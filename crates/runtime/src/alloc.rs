//! The region-based far-memory allocator.
//!
//! §3.1/§3.2 of the paper: TrackFM replaces libc `malloc` with an allocator
//! that hands out non-canonical pointers from the far heap, "leverag[ing]
//! AIFM's region-based allocator under the covers". Two placement rules from
//! §3.2 matter for I/O amplification:
//!
//! * "A single memory allocation can span multiple objects" — large
//!   allocations are aligned to object boundaries so their chunking is
//!   predictable;
//! * "smaller allocations are grouped into a single object" — a small
//!   allocation never straddles an object boundary, so touching it localizes
//!   exactly one object.

use crate::ptr::TfmPtr;
use std::collections::HashMap;

/// Allocation failure.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// The far heap is exhausted.
    OutOfMemory,
    /// Zero-sized allocation request.
    ZeroSize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "far heap exhausted"),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

const MIN_ALIGN: u64 = 16;

/// Region allocator over the far-heap offset space `[0, heap_size)`.
#[derive(Clone, Debug)]
pub struct RegionAllocator {
    heap_size: u64,
    obj_size: u64,
    bump: u64,
    /// Size-class free lists: rounded size → offsets.
    free_lists: HashMap<u64, Vec<u64>>,
    /// Live allocation sizes (rounded), keyed by offset.
    live: HashMap<u64, u64>,
    allocated_bytes: u64,
    peak_bytes: u64,
}

impl RegionAllocator {
    /// Creates an allocator over a heap of `heap_size` bytes chunked into
    /// `obj_size`-byte objects.
    ///
    /// # Panics
    /// Panics if `obj_size` is not a power of two or `heap_size` is not a
    /// multiple of `obj_size`.
    pub fn new(heap_size: u64, obj_size: u64) -> Self {
        assert!(obj_size.is_power_of_two(), "object size must be 2^k");
        assert!(
            heap_size.is_multiple_of(obj_size),
            "heap size must be a multiple of the object size"
        );
        RegionAllocator {
            heap_size,
            obj_size,
            bump: 0,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            allocated_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn round_size(&self, size: u64) -> u64 {
        let r = size.max(1).next_multiple_of(MIN_ALIGN);
        if r >= self.obj_size {
            r.next_multiple_of(self.obj_size)
        } else {
            // Round small sizes to the next power of two so free-list reuse
            // is exact-fit per class.
            r.next_power_of_two()
        }
    }

    /// Allocates `size` bytes, returning a TrackFM pointer.
    ///
    /// # Errors
    /// [`AllocError::ZeroSize`] for `size == 0`;
    /// [`AllocError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<TfmPtr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let rounded = self.round_size(size);
        // Exact-fit reuse first.
        if let Some(list) = self.free_lists.get_mut(&rounded) {
            if let Some(off) = list.pop() {
                self.live.insert(off, rounded);
                self.allocated_bytes += rounded;
                self.peak_bytes = self.peak_bytes.max(self.allocated_bytes);
                return Ok(TfmPtr::from_offset(off));
            }
        }
        // Bump allocation with the two placement rules.
        let off = if rounded >= self.obj_size {
            self.bump.next_multiple_of(self.obj_size)
        } else {
            let candidate = self.bump.next_multiple_of(MIN_ALIGN);
            let obj_of = |o: u64| o / self.obj_size;
            if obj_of(candidate) != obj_of(candidate + rounded - 1) {
                // Would straddle an object boundary: skip to the next object.
                candidate.next_multiple_of(self.obj_size)
            } else {
                candidate
            }
        };
        if off + rounded > self.heap_size {
            return Err(AllocError::OutOfMemory);
        }
        self.bump = off + rounded;
        self.live.insert(off, rounded);
        self.allocated_bytes += rounded;
        self.peak_bytes = self.peak_bytes.max(self.allocated_bytes);
        Ok(TfmPtr::from_offset(off))
    }

    /// Frees an allocation previously returned by [`RegionAllocator::alloc`].
    /// Returns the rounded size that was released.
    ///
    /// # Panics
    /// Panics on double-free or on a pointer that was never allocated
    /// (matching glibc's abort-on-invalid-free behaviour).
    pub fn free(&mut self, ptr: TfmPtr) -> u64 {
        let off = ptr.offset();
        let size = self
            .live
            .remove(&off)
            .unwrap_or_else(|| panic!("invalid or double free of {ptr}"));
        self.allocated_bytes -= size;
        self.free_lists.entry(size).or_default().push(off);
        size
    }

    /// The rounded size of a live allocation, if `ptr` is its base.
    pub fn size_of(&self, ptr: TfmPtr) -> Option<u64> {
        self.live.get(&ptr.offset()).copied()
    }

    /// Bytes currently allocated (rounded sizes).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// The object size the allocator aligns large allocations to.
    pub fn obj_size(&self) -> u64 {
        self.obj_size
    }

    /// Total heap capacity in bytes.
    pub fn heap_size(&self) -> u64 {
        self.heap_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_alloc() -> RegionAllocator {
        RegionAllocator::new(1 << 20, 4096)
    }

    #[test]
    fn large_allocations_are_object_aligned() {
        let mut a = new_alloc();
        let small = a.alloc(100).unwrap();
        let big = a.alloc(10_000).unwrap();
        assert_eq!(small.offset(), 0);
        assert_eq!(big.offset() % 4096, 0);
        assert!(big.offset() >= 4096);
        // Rounded up to whole objects: 10_000 → 12_288.
        assert_eq!(a.size_of(big), Some(12_288));
    }

    #[test]
    fn small_allocations_never_straddle_objects() {
        let mut a = RegionAllocator::new(1 << 20, 256);
        let mut offs = Vec::new();
        for _ in 0..100 {
            let p = a.alloc(96).unwrap(); // rounds to 128
            let off = p.offset();
            assert_eq!(off / 256, (off + 127) / 256, "straddles object: {off}");
            offs.push(off);
        }
        // All distinct.
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 100);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = new_alloc();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for size in [1u64, 16, 17, 100, 4096, 5000, 64, 8, 12_000] {
            let p = a.alloc(size).unwrap();
            let r = (p.offset(), p.offset() + a.size_of(p).unwrap());
            for &(s, e) in &ranges {
                assert!(r.1 <= s || r.0 >= e, "overlap {r:?} vs ({s},{e})");
            }
            ranges.push(r);
        }
    }

    #[test]
    fn free_enables_exact_fit_reuse() {
        let mut a = new_alloc();
        let p = a.alloc(64).unwrap();
        let off = p.offset();
        assert_eq!(a.free(p), 64);
        let q = a.alloc(64).unwrap();
        assert_eq!(q.offset(), off, "freed slot should be reused");
        assert_eq!(a.live_allocations(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = new_alloc();
        let p = a.alloc(64).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn zero_size_and_oom() {
        let mut a = RegionAllocator::new(8192, 4096);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
        let _ = a.alloc(4096).unwrap();
        let _ = a.alloc(4096).unwrap();
        assert_eq!(a.alloc(1), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn accounting_tracks_peak() {
        let mut a = new_alloc();
        let p = a.alloc(4096).unwrap();
        let q = a.alloc(4096).unwrap();
        assert_eq!(a.allocated_bytes(), 8192);
        a.free(p);
        assert_eq!(a.allocated_bytes(), 4096);
        assert_eq!(a.peak_bytes(), 8192);
        a.free(q);
        assert_eq!(a.allocated_bytes(), 0);
    }
}
