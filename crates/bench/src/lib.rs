//! # tfm-bench — the paper-reproduction harness
//!
//! One bench target per table/figure of the TrackFM paper's evaluation
//! (`cargo bench --workspace` regenerates all of them; see the experiment
//! index in DESIGN.md and the measured-vs-paper record in EXPERIMENTS.md).
//! Each target prints the rows/series the paper's exhibit plots.
//!
//! Set `TFM_SCALE=<divisor>` to shrink workload sizes for a quick pass
//! (e.g. `TFM_SCALE=8`); shapes are preserved at small scale, absolute
//! counts are not.

use std::fmt::Display;

use tfm_telemetry::{MergeStats, RunReport};

/// Paper clock rate: 2.4 GHz Xeon E5-2640v4.
pub const CLOCK_HZ: f64 = 2.4e9;

/// Workload scale divisor from `TFM_SCALE` (default 1 = full scale).
pub fn scale() -> usize {
    std::env::var("TFM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// The local-memory fractions the figures sweep.
pub fn fractions() -> Vec<f64> {
    vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
}

/// Prints a titled, aligned table.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, c) in r.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers);
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in &rows {
        line(r);
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats bytes as MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Folds per-run counter structs into one aggregate via [`MergeStats`]
/// (counters add, high-water marks take the max). Replaces the hand-summed
/// per-field accumulation the sweep benches used to do.
pub fn merge_all<T: MergeStats + Default>(items: impl IntoIterator<Item = T>) -> T {
    let mut acc = T::default();
    for it in items {
        acc.merge(&it);
    }
    acc
}

/// One compact summary line per [`RunReport`], for sweep benches that print
/// many reports: cycles, stall share, slow-guard share, and the hottest
/// guard site.
pub fn report_line(rep: &RunReport) -> String {
    let cycles = rep.field("exec", "cycles").unwrap_or(0);
    let stall = rep.field("exec", "stall_cycles").unwrap_or(0);
    let fast = rep.field("exec", "guards_fast").unwrap_or(0);
    let slow = rep.field("exec", "guards_slow_local").unwrap_or(0)
        + rep.field("exec", "guards_slow_remote").unwrap_or(0);
    let total = fast + slow;
    let hot = rep
        .sites
        .first()
        .map(|s| format!(", hottest {} ({} stall)", s.label, s.stats.stall_cycles))
        .unwrap_or_default();
    format!(
        "{} on {}: {} cycles ({:.1}% stalled), {}/{} slow guards{}",
        rep.workload,
        rep.system,
        cycles,
        if cycles > 0 {
            100.0 * stall as f64 / cycles as f64
        } else {
            0.0
        },
        slow,
        total,
        hot
    )
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(mib(1 << 20), "1.0");
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn merge_all_folds_counters() {
        use tfm_net::TransferStats;
        let runs = vec![
            TransferStats {
                fetches: 1,
                bytes_fetched: 100,
                ..Default::default()
            },
            TransferStats {
                fetches: 2,
                bytes_fetched: 50,
                writebacks: 4,
                ..Default::default()
            },
        ];
        let total = merge_all(runs);
        assert_eq!(total.fetches, 3);
        assert_eq!(total.bytes_fetched, 150);
        assert_eq!(total.writebacks, 4);
    }

    #[test]
    fn report_line_reads_exec_section() {
        use tfm_sim::ExecStats;
        let mut rep = RunReport::new("w", "trackfm");
        rep.push_section(&ExecStats {
            cycles: 1000,
            stall_cycles: 250,
            guards_fast: 9,
            guards_slow_remote: 1,
            ..Default::default()
        });
        let line = report_line(&rep);
        assert!(line.contains("1000 cycles"), "{line}");
        assert!(line.contains("25.0% stalled"), "{line}");
        assert!(line.contains("1/10 slow guards"), "{line}");
    }
}
