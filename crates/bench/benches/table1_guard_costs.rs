//! Table 1: TrackFM fast-path vs. slow-path guard costs when an object is
//! local (median cycles in the paper; deterministic model cycles here).
//!
//! The "uncached" column of the paper measures CPU-cache misses on the
//! object state table; the simulator does not model the CPU cache, so we
//! report the cached path and note the omission in EXPERIMENTS.md.

use tfm_bench::print_table;
use tfm_net::LinkParams;
use tfm_runtime::FarMemoryConfig;
use tfm_sim::{ExecStats, MemorySystem, TrackFmMem};
use trackfm::CostModel;

fn mem() -> TrackFmMem {
    TrackFmMem::new(
        FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 1 << 20,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        },
        CostModel::default(),
    )
}

fn main() {
    let mut rows = Vec::new();

    // Fast paths: object local and safe.
    for (label, write, paper) in [
        ("TrackFM fast-path read guard", false, 21),
        ("TrackFM fast-path write guard", true, 21),
    ] {
        let mut m = mem();
        let mut st = ExecStats::default();
        let ptr = m.alloc(4096, 0).unwrap();
        let (cycles, _) = m.guard(ptr, write, 0, &mut st).unwrap();
        // Report the guard body cost (excluding the custody check) to match
        // the paper's accounting, plus the total.
        let body = cycles - CostModel::default().custody_check;
        rows.push(vec![
            label.to_string(),
            body.to_string(),
            cycles.to_string(),
            paper.to_string(),
        ]);
    }

    // Slow paths with the object local: arrange an already-completed
    // prefetch so localize() finds the data in place.
    for (label, write, paper) in [
        ("TrackFM slow-path read guard", false, 144),
        ("TrackFM slow-path write guard", true, 159),
    ] {
        let mut m = mem();
        let mut st = ExecStats::default();
        let ptr = m.alloc(4096, 0).unwrap();
        m.evacuate_all(0);
        m.prefetch_hint(ptr, 0);
        // Take the guard long after the fetch landed: slow path, no stall.
        let (cycles, _) = m.guard(ptr, write, 10_000_000, &mut st).unwrap();
        let body = cycles - CostModel::default().custody_check;
        rows.push(vec![
            label.to_string(),
            body.to_string(),
            cycles.to_string(),
            paper.to_string(),
        ]);
        assert_eq!(st.guards_slow_local, 1, "must exercise the slow-local path");
    }

    // Extensions beyond Table 1: the chunking primitives of §3.4.
    let cost = CostModel::default();
    rows.push(vec![
        "chunk object-boundary check".to_string(),
        cost.boundary_check.to_string(),
        cost.boundary_check.to_string(),
        "~3 insts".to_string(),
    ]);
    rows.push(vec![
        "chunk locality-invariant guard".to_string(),
        cost.locality_guard.to_string(),
        cost.locality_guard.to_string(),
        "(runtime call)".to_string(),
    ]);

    print_table(
        "Table 1: guard costs, object local (cycles)",
        &["guard type", "body", "incl. custody", "paper (cached)"],
        &rows,
    );
    println!("  note: the paper's 'uncached' column reflects CPU-cache misses, which the simulator does not model.");
}
