//! §4.6: compilation costs — code-size growth and compile time across the
//! suite. Paper: generated code grows ×2.4 on average (proportional to the
//! number of memory instructions) and compile time stays under 6× stock
//! LLVM. Our analog: live-instruction growth and TrackFM pass time relative
//! to the O1 scalar pipeline alone (our stand-in for the stock compile).

use std::time::Instant;
use tfm_bench::{f2, print_table, scale};
use tfm_workloads::{analytics, hashmap, kmeans, memcached, nas, stream};
use trackfm::{CompilerOptions, TrackFmCompiler};

fn main() {
    let sc = scale();
    let specs = vec![
        stream::sum(&stream::StreamParams {
            elems: (2 << 20) / sc,
        }),
        stream::copy(&stream::StreamParams {
            elems: (2 << 20) / sc,
        }),
        kmeans::kmeans(&kmeans::KmeansParams::default()),
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 50_000,
            lookups: 1,
            ..Default::default()
        }),
        analytics::analytics(&analytics::AnalyticsParams {
            rows: 10_000,
            groups: 1_000,
        }),
        memcached::memcached(&memcached::MemcachedParams {
            keys: 10_000,
            gets: 1,
            ..Default::default()
        }),
    ]
    .into_iter()
    .chain(nas::all(&nas::NasParams { shrink: 10 }))
    .collect::<Vec<_>>();

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut time_ratios = Vec::new();
    for spec in &specs {
        // Baseline compile: the O1 scalar pipeline alone.
        let mut m0 = spec.module.clone();
        let t0 = Instant::now();
        trackfm::passes::o1::run(&mut m0);
        let base_ns = t0.elapsed().as_nanos().max(1);

        // Full TrackFM compile.
        let mut m = spec.module.clone();
        let compiler = TrackFmCompiler::new(CompilerOptions::default());
        let report = compiler.compile(&mut m, None);

        ratios.push(report.code_size_ratio());
        let tr = report.total_nanos() as f64 / base_ns as f64;
        time_ratios.push(tr);
        rows.push(vec![
            spec.name.clone(),
            report.insts_before.to_string(),
            report.insts_after.to_string(),
            f2(report.code_size_ratio()),
            report.total_guards().to_string(),
            report.chunking.streams.to_string(),
            f2(tr),
        ]);
    }
    print_table(
        "Sec. 4.6: compilation costs",
        &[
            "workload",
            "insts before",
            "insts after",
            "size ratio",
            "guards",
            "streams",
            "time vs O1",
        ],
        &rows,
    );
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let mean_t = time_ratios.iter().sum::<f64>() / time_ratios.len() as f64;
    println!("  mean code-size growth: {mean:.2}x (paper: 2.4x); mean compile-time ratio: {mean_t:.1}x (paper: <6x)");
}
