//! Fig. 10: impact of the AIFM object size on STREAM Copy (claim C4/E4:
//! high spatial locality benefits from larger objects).
//!
//! Reported as far-memory bandwidth (MB/s of application data processed),
//! STREAM's native metric.

use tfm_bench::{f2, print_table, scale, CLOCK_HZ};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{copy, StreamParams};

const SIZES: [u64; 5] = [4096, 2048, 1024, 512, 256];

fn main() {
    let p = StreamParams {
        elems: (2 << 20) / scale(),
    };
    let spec = copy(&p);
    // STREAM "copy" moves 2 × 4 bytes per element.
    let app_bytes = (p.elems * 8) as f64;

    let mut rows = Vec::new();
    for f in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut row = vec![f2(f)];
        for os in SIZES {
            let out = execute(&spec, &RunConfig::trackfm(f).with_object_size(os));
            let mbs = app_bytes / out.result.seconds(CLOCK_HZ) / 1e6;
            row.push(format!("{mbs:.0}"));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 10a: STREAM copy bandwidth (MB/s) vs. local memory, per object size",
        &["local frac", "4KB", "2KB", "1KB", "512B", "256B"],
        &rows,
    );

    let mut rows = Vec::new();
    for os in SIZES {
        let out = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(os));
        let mbs = app_bytes / out.result.seconds(CLOCK_HZ) / 1e6;
        rows.push(vec![
            format!("{os}B"),
            format!("{mbs:.0}"),
            out.result
                .runtime
                .map(|r| r.remote_fetches + r.prefetch_issued)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    print_table(
        "Fig. 10b: STREAM copy bandwidth at 25% local memory",
        &["object size", "MB/s", "fetches"],
        &rows,
    );
    println!("  paper: 4KB objects win — perfect spatial locality amortizes per-message latency over more bytes.");
}
