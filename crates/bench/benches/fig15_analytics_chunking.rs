//! Fig. 15: applying loop chunking to the analytics application's
//! low-density aggregation loops reduces performance; the cost-model filter
//! restores it (claim C9/E9).

use tfm_bench::{f2, print_table, scale};
use tfm_workloads::analytics::{analytics, AnalyticsParams};
use tfm_workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};
use trackfm::ChunkingMode;

fn main() {
    let p = AnalyticsParams {
        rows: 200_000 / scale(),
        groups: 16_000 / scale(),
    };
    let spec = analytics(&p);
    let profile = collect_profile(&spec);
    let local = execute(&spec, &RunConfig::local());
    let base = local.result.stats.cycles as f64;

    let mut rows = Vec::new();
    for f in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut off = RunConfig::trackfm(f);
        off.compiler.chunking = ChunkingMode::Off;
        let mut all = RunConfig::trackfm(f);
        all.compiler.chunking = ChunkingMode::AllLoops;
        let mut model = RunConfig::trackfm(f);
        model.compiler.chunking = ChunkingMode::CostModel;

        let r_off = execute(&spec, &off);
        let r_all = execute(&spec, &all);
        let r_model = execute_with_profile(&spec, &model, Some(&profile));
        rows.push(vec![
            f2(f),
            f2(r_off.result.stats.cycles as f64 / base),
            f2(r_all.result.stats.cycles as f64 / base),
            f2(r_model.result.stats.cycles as f64 / base),
            r_model
                .report
                .as_ref()
                .map(|r| r.chunking.skipped_low_benefit)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    print_table(
        "Fig. 15: analytics slowdown vs. local-only, by chunking policy",
        &[
            "local frac",
            "baseline (no chunk)",
            "all loops",
            "high-density only",
            "streams filtered",
        ],
        &rows,
    );
    println!("  paper: 'all loops' is clearly worse; the filtered variant tracks (or beats) the baseline.");
}
