//! Fig. 7: loop-chunking speedup on STREAM Sum and Copy as the local-memory
//! fraction sweeps (claim C1/E1: chunking eliminates fast-path guards;
//! speedup grows with the number of memory accesses per loop and leans
//! toward the right-hand, guard-bound side).

use tfm_bench::{f2, fractions, print_table, scale};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{copy, sum, StreamParams};
use trackfm::ChunkingMode;

fn main() {
    let p = StreamParams {
        elems: (2 << 20) / scale(),
    };
    for (label, spec) in [("Sum", sum(&p)), ("Copy", copy(&p))] {
        let mut rows = Vec::new();
        for f in fractions() {
            // Prefetch off on both arms: Fig. 7 isolates guard elimination
            // (Fig. 11 adds prefetching).
            let mut naive = RunConfig::trackfm(f).with_prefetch(false);
            naive.compiler.chunking = ChunkingMode::Off;
            let chunked = RunConfig::trackfm(f).with_prefetch(false);

            let rn = execute(&spec, &naive);
            let rc = execute(&spec, &chunked);
            let speedup = rn.result.stats.cycles as f64 / rc.result.stats.cycles as f64;
            rows.push(vec![
                f2(f),
                f2(speedup),
                rn.result.stats.guards_fast.to_string(),
                rc.result.stats.guards_fast.to_string(),
                rc.result.stats.boundary_checks.to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 7 ({label}): chunking speedup vs. local memory [% of working set]"),
            &[
                "local frac",
                "speedup",
                "fast guards (naive)",
                "fast guards (chunked)",
                "boundary checks",
            ],
            &rows,
        );
    }
    println!(
        "  paper: speedups ~1.5-2.0, higher for Copy (more accesses/loop), rising to the right."
    );
}
