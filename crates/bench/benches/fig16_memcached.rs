//! Fig. 16: the memcached-like key-value store under Zipfian `get`s as the
//! skew parameter sweeps 1.0–1.3 (claim C10/E10).
//!
//! (a) throughput (KOps/s) for TrackFM (64 B objects), Fastswap, all-local;
//! (b) guard events vs. major faults;
//! (c) total data transferred.
//!
//! Paper: TrackFM ~1.7× over Fastswap at low skew (I/O amplification:
//! Fastswap moves 66× the working set vs. TrackFM's 15×); Fastswap
//! converges as skew (temporal locality) grows.

use tfm_bench::{f2, print_table, scale, CLOCK_HZ};
use tfm_workloads::memcached::{memcached, MemcachedParams};
use tfm_workloads::runner::{execute, RunConfig};

fn main() {
    let base = MemcachedParams {
        keys: 100_000 / scale(),
        gets: 300_000 / scale(),
        ..MemcachedParams::default()
    };
    // Paper: 12 GB working set, 1 GB local → ~8% local fraction.
    let frac = 0.085;

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for skew in [1.01, 1.05, 1.1, 1.2, 1.3] {
        let spec = memcached(&MemcachedParams { skew, ..base });
        let ws = spec.working_set() as f64;
        let tfm = execute(&spec, &RunConfig::trackfm(frac).with_object_size(64));
        let fsw = execute(&spec, &RunConfig::fastswap(frac));
        let loc = execute(&spec, &RunConfig::local());

        let kops = |secs: f64| base.gets as f64 / secs / 1e3;
        rows_a.push(vec![
            f2(skew),
            format!("{:.1}", kops(tfm.result.seconds(CLOCK_HZ))),
            format!("{:.1}", kops(fsw.result.seconds(CLOCK_HZ))),
            format!("{:.1}", kops(loc.result.seconds(CLOCK_HZ))),
        ]);
        rows_b.push(vec![
            f2(skew),
            tfm.result.stats.total_guards().to_string(),
            fsw.result
                .pager
                .map(|p| p.major_faults)
                .unwrap_or(0)
                .to_string(),
        ]);
        rows_c.push(vec![
            f2(skew),
            f2(tfm.result.bytes_transferred() as f64 / ws),
            f2(fsw.result.bytes_transferred() as f64 / ws),
        ]);
    }
    print_table(
        "Fig. 16a: memcached get throughput (KOps/s) vs. Zipf skew",
        &["skew", "TrackFM 64B", "Fastswap", "all local"],
        &rows_a,
    );
    print_table(
        "Fig. 16b: guard events vs. major faults",
        &["skew", "TrackFM guards", "Fastswap major faults"],
        &rows_b,
    );
    print_table(
        "Fig. 16c: data transferred (x working set)",
        &["skew", "TrackFM", "Fastswap"],
        &rows_c,
    );
    println!("  paper: TrackFM ~1.7x at skew <= 1.04 falling to ~1.3x; Fastswap amplification 66x vs TrackFM 15x.");
}
