//! Unified run reports for one representative configuration of each
//! far-memory system: the human rendering (subsystem counters, latency
//! histograms, hottest guard sites) followed by the one-line summary.
//!
//! Pass `--json` (any argument containing "json") to dump the
//! machine-readable form instead.

use tfm_bench::{report_line, scale};
use tfm_workloads::hashmap::{hashmap, HashmapParams};
use tfm_workloads::runner::{execute_with_report, RunConfig};

fn main() {
    let json = std::env::args().any(|a| a.contains("json"));
    let p = HashmapParams {
        keys: 100_000 / scale(),
        lookups: 50_000 / scale(),
        ..HashmapParams::default()
    };
    let spec = hashmap(&p);
    let configs = [
        RunConfig::trackfm(0.25).with_object_size(64),
        RunConfig::aifm(0.25).with_object_size(64),
        RunConfig::fastswap(0.25),
        RunConfig::hybrid(0.25),
    ];
    for cfg in configs {
        let (_, rep) = execute_with_report(&spec, &cfg);
        if json {
            println!("{}", rep.to_json().to_string_pretty());
        } else {
            print!("{rep}");
            println!("  {}\n", report_line(&rep));
        }
    }
}
