//! Fig. 12: TrackFM (chunking + prefetching) speedup over Fastswap on
//! STREAM Sum/Copy (claim C6/E6). Paper: ~2.7× for Sum, ~2.9× for Copy —
//! Fastswap is limited by page-fault costs and its inability to see the
//! access pattern ahead of time.

use tfm_bench::{f2, fractions, print_table, scale};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{copy, sum, StreamParams};

fn main() {
    let p = StreamParams {
        elems: (2 << 20) / scale(),
    };
    for (label, spec) in [("Sum", sum(&p)), ("Copy", copy(&p))] {
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for f in fractions() {
            let tfm = execute(&spec, &RunConfig::trackfm(f));
            let fsw = execute(&spec, &RunConfig::fastswap(f));
            let speedup = fsw.result.stats.cycles as f64 / tfm.result.stats.cycles as f64;
            speedups.push(speedup);
            rows.push(vec![
                f2(f),
                f2(speedup),
                fsw.result
                    .pager
                    .map(|p| p.major_faults)
                    .unwrap_or(0)
                    .to_string(),
                tfm.result
                    .runtime
                    .map(|r| r.remote_fetches + r.prefetch_issued)
                    .unwrap_or(0)
                    .to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 12 ({label}): TrackFM speedup over Fastswap"),
            &["local frac", "speedup", "fsw major faults", "tfm fetches"],
            &rows,
        );
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("  mean speedup: {mean:.2}x (paper: ~2.7x Sum, ~2.9x Copy)");
    }
}
