//! Pay-for-use check for the fault-injection fabric: with no fault plan
//! attached (the paper's flawless fabric, and the default everywhere), the
//! guard fast path and the 4 KB fetch cost are unchanged — in simulated
//! cycles *exactly*, and in wall-clock ns/op within noise.
//!
//! Two parts:
//!   1. Deterministic: 4 KB `Link::transfer` completion times and a full
//!      demand-localize through `FarMemory` are asserted bit-identical with
//!      and without `FaultPlan::none()` attached.
//!   2. Wall clock: the guard fast path and the raw link transfer, benched
//!      with no plan, with the inactive `none()` plan, and with an active
//!      (1 ppm) plan — the last one bounds the per-attempt hashing cost.

use std::hint::black_box;
use std::time::Instant;

use tfm_net::{FaultPlan, Link, LinkParams};
use tfm_runtime::FarMemoryConfig;
use tfm_sim::{ExecStats, MemorySystem, TrackFmMem};
use trackfm::CostModel;

/// Times `f` (which must run `iters` iterations) and reports the best
/// per-iteration time over `runs` attempts, after one warmup.
fn bench(name: &str, iters: u64, mut f: impl FnMut(u64)) {
    const RUNS: usize = 5;
    f(iters / 10 + 1); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        f(iters);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / iters as f64);
    }
    println!("  {name:<32} {:>10.1} ns/op", best * 1e9);
}

fn fm_config(faults: FaultPlan) -> FarMemoryConfig {
    FarMemoryConfig {
        heap_size: 1 << 20,
        object_size: 4096,
        local_budget: 1 << 20,
        link: LinkParams::tcp_25g(),
        faults,
        ..FarMemoryConfig::small()
    }
}

/// Simulated cycles of one remote demand fetch (slow-path guard on an
/// evacuated object), under the given fault plan.
fn demand_fetch_cycles(faults: FaultPlan) -> u64 {
    let mut m = TrackFmMem::new(fm_config(faults), CostModel::default());
    let mut st = ExecStats::default();
    let ptr = m.alloc(4096, 0).unwrap();
    m.evacuate_all(0);
    let (cycles, _) = m.guard(ptr, false, 10_000_000, &mut st).unwrap();
    cycles
}

fn check_simulated_costs_identical() {
    // Raw link: a 4 KB transfer completes at the same cycle whether no plan
    // was ever attached or the inactive `none()` plan was.
    let params = LinkParams::tcp_25g();
    let mut bare = Link::new(params);
    let mut none = Link::new(params);
    none.set_fault_plan(FaultPlan::none());
    for i in 0..1_000u64 {
        let now = i * 777;
        assert_eq!(bare.transfer(4096, now), none.transfer(4096, now));
        assert_eq!(bare.writeback(4096, now), none.writeback(4096, now));
    }
    assert_eq!(bare.stats(), none.stats());
    println!("  link_transfer_4k: bit-identical with FaultPlan::none() attached");

    // Full runtime slow path: demand localize costs the same cycles.
    let a = demand_fetch_cycles(FaultPlan::none());
    let b = demand_fetch_cycles(FaultPlan::default());
    assert_eq!(
        a, b,
        "demand fetch cost must not depend on the inactive plan"
    );
    println!("  demand_fetch: {a} cycles with and without the inactive plan");
}

fn bench_guard_fast_path() {
    for (name, faults) in [
        ("guard_fast_path_no_faults", FaultPlan::none()),
        // An active 1 ppm plan: every attempt hashes a fate, none fires.
        ("guard_fast_path_1ppm_plan", FaultPlan::drops(7, 1)),
    ] {
        let mut mem = TrackFmMem::new(fm_config(faults), CostModel::default());
        let ptr = mem.alloc(1 << 20, 0).unwrap();
        let mut stats = ExecStats::default();
        bench(name, 2_000_000, |iters| {
            for _ in 0..iters {
                let (cycles, out) = mem
                    .guard(black_box(ptr + 64), false, 0, &mut stats)
                    .unwrap();
                black_box((cycles, out));
            }
        });
    }
}

fn bench_link_transfer() {
    for (name, plan) in [
        ("link_transfer_4k_no_plan", None),
        ("link_transfer_4k_none_plan", Some(FaultPlan::none())),
        ("link_transfer_4k_1ppm_plan", Some(FaultPlan::drops(7, 1))),
    ] {
        let mut link = Link::new(LinkParams::tcp_25g());
        if let Some(p) = plan {
            link.set_fault_plan(p);
        }
        bench(name, 2_000_000, |iters| {
            for i in 0..iters {
                black_box(link.transfer(black_box(4096), i * 40_000));
            }
        });
    }
}

fn main() {
    println!("fault_overhead: pay-for-use checks");
    check_simulated_costs_identical();
    println!("\nfault_overhead (best-of-5, wall clock):");
    bench_guard_fast_path();
    bench_link_transfer();
    println!("\n  note: the no-plan and none-plan rows must match within noise;");
    println!("  the 1ppm rows bound the cost of hashing a fate per attempt.");
}
