//! Real wall-clock throughput of the two execution engines.
//!
//! Everything else in this suite measures *simulated* cycles; this bench
//! measures *host* time — the only quantity the bytecode engine is allowed
//! to change. It runs the serving workload under local memory on both
//! engines, asserts bit-identical simulated results first, then times each
//! engine and gates on the bytecode engine clearing **≥ 1.5×** the
//! tree-walker's wall-clock throughput (measured headroom ≈ 2×; the gate
//! leaves margin for a noisy single-core host).
//!
//! A note on the threshold: EXPERIMENTS.md long pegged the tree-walker at
//! ~76 ns per IR instruction, which would have made a 5× gate trivial.
//! The measured baseline on this host is ~7 ns/instruction — the
//! tree-walker is itself a dense-register interpreter — so roughly 1 ns of
//! every instruction is *shared* simulation work (memory-system calls,
//! `read_mem`/`write_mem`, edge profiling) and the per-dispatch floor of a
//! faithful interpreter (~5-7 host cycles at 2.1 GHz) bounds any honest
//! interpreter-vs-interpreter speedup near ~2.5-3×. The bytecode engine's
//! measured ~2× comes from superinstruction fusion, lowering-time ALU
//! specialization and hoisted hot counters; the remaining gap to the
//! tree-walker's ceiling is shared-cost, not dispatch.
//!
//! Emits `BENCH_interp.json` (ns/instruction, M inst/s, speedup, plus
//! informational sanitized and far-memory rows) for CI trend tracking and
//! the EXPERIMENTS.md table.

use std::time::Instant;
use tfm_sim::{ExecEngine, LocalMem, Machine, RunResult, TrackFmMem};
use tfm_telemetry::Json;
use tfm_workloads::runner::{self, RunConfig};
use tfm_workloads::serving::{serving, ServingParams};
use tfm_workloads::spec::WorkloadSpec;
use trackfm::TrackFmCompiler;

/// Reps per measurement; the fastest is reported (standard wall-clock
/// practice: the minimum is the least noise-contaminated sample).
const REPS: usize = 7;

/// The wall-clock gate: bytecode must clear this many hundredths of the
/// tree-walker's time (150 = 1.5×).
const GATE_X100: u64 = 150;

/// One timed run on a fresh machine: returns the result and the wall-clock
/// nanoseconds of `Machine::run` alone (setup and lowering of the module —
/// a once-per-machine cost — stay inside the timed region for the bytecode
/// engine, so the gate is conservative).
fn timed_local(spec: &WorkloadSpec, engine: ExecEngine) -> (RunResult, u64) {
    let heap = spec.heap_size(4096);
    let mut machine = Machine::new(&spec.module, LocalMem::new(heap), Default::default(), heap);
    machine.set_engine(engine);
    let args = runner::setup(spec, &mut machine, false);
    let t = Instant::now();
    let r = machine.run("main", &args).expect("serving run trapped");
    (r, t.elapsed().as_nanos() as u64)
}

/// Best-of-REPS wall time plus the (identical every rep) result.
fn measure_local(spec: &WorkloadSpec, engine: ExecEngine) -> (RunResult, u64) {
    let mut best = u64::MAX;
    let mut result = None;
    for _ in 0..REPS {
        let (r, ns) = timed_local(spec, engine);
        best = best.min(ns);
        result = Some(r);
    }
    (result.unwrap(), best)
}

/// Informational sanitized measurement: the TrackFM-compiled binary (so
/// every access carries custody) under the guard sanitizer, where the
/// tree-walker additionally pays per-call shadow allocations.
fn measure_sanitized(spec: &WorkloadSpec, engine: ExecEngine) -> (RunResult, u64) {
    let cfg = RunConfig::trackfm(0.25);
    let mut module = spec.module.clone();
    TrackFmCompiler::new(cfg.compiler).compile(&mut module, None);
    let mut best = u64::MAX;
    let mut result = None;
    for _ in 0..REPS {
        let heap = spec.heap_size(4096);
        let mut machine = Machine::new(&module, LocalMem::new(heap), Default::default(), heap);
        machine.set_engine(engine);
        machine.enable_guard_sanitizer();
        let args = runner::setup(spec, &mut machine, false);
        let t = Instant::now();
        let r = machine.run("main", &args).expect("serving run trapped");
        best = best.min(t.elapsed().as_nanos() as u64);
        result = Some(r);
    }
    (result.unwrap(), best)
}

/// Informational far-memory measurement: the TrackFM-compiled binary on the
/// object runtime, where memory-system work dilutes the interpreter's share
/// of the wall clock (Amdahl) — reported, not gated.
fn measure_trackfm(spec: &WorkloadSpec, engine: ExecEngine) -> (RunResult, u64) {
    let cfg = RunConfig::trackfm(0.25);
    let mut module = spec.module.clone();
    TrackFmCompiler::new(cfg.compiler).compile(&mut module, None);
    let mut best = u64::MAX;
    let mut result = None;
    for _ in 0..REPS {
        let mem = TrackFmMem::new(runner::far_config(spec, &cfg), cfg.cost);
        let heap = spec.heap_size(cfg.object_size);
        let mut machine = Machine::new(&module, mem, cfg.cost, heap);
        machine.set_engine(engine);
        let args = runner::setup(spec, &mut machine, false);
        let t = Instant::now();
        let r = machine.run("main", &args).expect("serving run trapped");
        best = best.min(t.elapsed().as_nanos() as u64);
        result = Some(r);
    }
    (result.unwrap(), best)
}

fn ns_per_inst_x100(ns: u64, insts: u64) -> u64 {
    ns * 100 / insts.max(1)
}

fn minst_per_sec(ns: u64, insts: u64) -> u64 {
    insts * 1_000 / ns.max(1)
}

fn main() {
    let spec = serving(&ServingParams::default());

    // ------------------------------------------------------------------
    // 1. Identity gate before any timing: both engines must agree on the
    //    full simulated outcome (result, cycles, every counter).
    // ------------------------------------------------------------------
    println!("interp_speed: identity check");
    let (tw_r, _) = timed_local(&spec, ExecEngine::TreeWalk);
    let (bc_r, _) = timed_local(&spec, ExecEngine::Bytecode);
    assert_eq!(tw_r.ret, bc_r.ret, "engines must agree on the result");
    assert_eq!(
        tw_r.stats, bc_r.stats,
        "engines must agree on every simulated counter"
    );
    assert_eq!(
        tw_r.ret,
        spec.expected.expect("serving has an oracle"),
        "serving oracle"
    );
    assert_eq!(
        bc_r.engine.dispatched_insts, bc_r.stats.instructions,
        "bytecode must dispatch every retired instruction"
    );
    println!(
        "  identical: ret={} cycles={} insts={}",
        tw_r.ret, tw_r.stats.cycles, tw_r.stats.instructions
    );

    // ------------------------------------------------------------------
    // 2. The wall-clock gate: serving under local memory, best of REPS.
    // ------------------------------------------------------------------
    let (tw_r, tw_ns) = measure_local(&spec, ExecEngine::TreeWalk);
    let (bc_r, bc_ns) = measure_local(&spec, ExecEngine::Bytecode);
    let insts = tw_r.stats.instructions;
    let speedup_x100 = tw_ns * 100 / bc_ns.max(1);
    println!("\ninterp_speed (serving, {insts} insts, local memory, best of {REPS}):");
    for (name, ns) in [("treewalk", tw_ns), ("bytecode", bc_ns)] {
        let nspi = ns_per_inst_x100(ns, insts);
        println!(
            "  {name:<9} {:>9} us  {:>3}.{:02} ns/inst  {:>5} M inst/s",
            ns / 1_000,
            nspi / 100,
            nspi % 100,
            minst_per_sec(ns, insts),
        );
    }
    println!(
        "  speedup   {}.{:02}x (gate: >= {}.{:02}x)",
        speedup_x100 / 100,
        speedup_x100 % 100,
        GATE_X100 / 100,
        GATE_X100 % 100
    );
    assert_eq!(tw_r.stats, bc_r.stats, "timed runs must stay identical");
    assert!(
        bc_ns * GATE_X100 <= tw_ns * 100,
        "bytecode must clear >= {GATE_X100}/100 x the tree-walker on serving: \
         {bc_ns} ns vs {tw_ns} ns"
    );

    // ------------------------------------------------------------------
    // 3. Informational: sanitize mode (TrackFM-compiled, custody shadow
    //    tracking on) and far memory (Amdahl-diluted) comparisons.
    // ------------------------------------------------------------------
    let (stw_r, stw_ns) = measure_sanitized(&spec, ExecEngine::TreeWalk);
    let (sbc_r, sbc_ns) = measure_sanitized(&spec, ExecEngine::Bytecode);
    assert_eq!(
        stw_r.stats, sbc_r.stats,
        "sanitized runs must stay identical"
    );
    let san_speedup_x100 = stw_ns * 100 / sbc_ns.max(1);
    println!(
        "\n  sanitized (guard sanitizer, trackfm-compiled): {} us -> {} us ({}.{:02}x, informational)",
        stw_ns / 1_000,
        sbc_ns / 1_000,
        san_speedup_x100 / 100,
        san_speedup_x100 % 100
    );

    let (ftw_r, ftw_ns) = measure_trackfm(&spec, ExecEngine::TreeWalk);
    let (fbc_r, fbc_ns) = measure_trackfm(&spec, ExecEngine::Bytecode);
    assert_eq!(
        ftw_r.stats, fbc_r.stats,
        "far-memory runs must stay identical"
    );
    let far_speedup_x100 = ftw_ns * 100 / fbc_ns.max(1);
    println!(
        "  far-memory (trackfm 25% local): {} us -> {} us ({}.{:02}x, informational)",
        ftw_ns / 1_000,
        fbc_ns / 1_000,
        far_speedup_x100 / 100,
        far_speedup_x100 % 100
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("interp_speed".into())),
        ("workload".into(), Json::Str("serving".into())),
        ("identical".into(), Json::Bool(true)),
        ("instructions".into(), Json::Int(insts)),
        ("treewalk_ns".into(), Json::Int(tw_ns)),
        ("bytecode_ns".into(), Json::Int(bc_ns)),
        (
            "treewalk_ns_per_inst_x100".into(),
            Json::Int(ns_per_inst_x100(tw_ns, insts)),
        ),
        (
            "bytecode_ns_per_inst_x100".into(),
            Json::Int(ns_per_inst_x100(bc_ns, insts)),
        ),
        (
            "treewalk_minst_per_sec".into(),
            Json::Int(minst_per_sec(tw_ns, insts)),
        ),
        (
            "bytecode_minst_per_sec".into(),
            Json::Int(minst_per_sec(bc_ns, insts)),
        ),
        ("speedup_x100".into(), Json::Int(speedup_x100)),
        ("gate_x100".into(), Json::Int(GATE_X100)),
        (
            "gate_pass".into(),
            Json::Bool(bc_ns * GATE_X100 <= tw_ns * 100),
        ),
        ("san_treewalk_ns".into(), Json::Int(stw_ns)),
        ("san_bytecode_ns".into(), Json::Int(sbc_ns)),
        ("san_speedup_x100".into(), Json::Int(san_speedup_x100)),
        ("far_treewalk_ns".into(), Json::Int(ftw_ns)),
        ("far_bytecode_ns".into(), Json::Int(fbc_ns)),
        ("far_speedup_x100".into(), Json::Int(far_speedup_x100)),
    ]);
    std::fs::write("BENCH_interp.json", doc.to_string_pretty()).expect("write BENCH_interp.json");
    println!("\n  wrote BENCH_interp.json");
}
