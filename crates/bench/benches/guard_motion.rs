//! Interprocedural custody + loop-invariant guard motion: what the new
//! transforms buy over redundant-guard elimination alone (the prior
//! baseline, which had no summaries and no motion).
//!
//! For each workload, compile and run under two configurations:
//!
//!   * **elide-only** — `interproc`, `call_aware_kills`, and
//!     `guard_motion` all off; same-block elision on (the old pipeline);
//!   * **full** — everything on (today's defaults).
//!
//! The gate asserts:
//!
//!   1. **Determinism** — compiling twice yields identical
//!      [`MotionOutcome`]s (counts *and* per-site attribution);
//!   2. **Soundness dividend** — results are unchanged (the runner checks
//!      the checksum) and simulated cycles never increase;
//!   3. **Strict win** — on the serving loop, whose invariant-slot guard
//!      is only hoistable interprocedurally, `full` must *strictly* beat
//!      `elide-only`.
//!
//! Emits `BENCH_guard_motion.json` for CI trend tracking.
//!
//! ```sh
//! cargo bench -q -p tfm-bench --bench guard_motion
//! ```

use tfm_bench::{print_table, scale};
use tfm_telemetry::Json;
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::{memcached, serving, stream, WorkloadSpec};
use trackfm::{CompilerOptions, TrackFmCompiler};

fn elide_only(mut opts: CompilerOptions) -> CompilerOptions {
    opts.interproc = false;
    opts.call_aware_kills = false;
    opts.guard_motion = false;
    opts
}

fn workloads() -> Vec<(&'static str, WorkloadSpec, RunConfig, bool)> {
    let s = scale();
    vec![
        (
            "serving",
            serving::serving(&serving::ServingParams {
                ops: (1 << 16) / s,
                buckets: 256,
                seed: 42,
            }),
            RunConfig::trackfm(0.25).with_object_size(64),
            true, // the strict-win workload
        ),
        (
            "quickstart(stream-sum)",
            stream::sum(&stream::StreamParams {
                elems: (1 << 20) / s,
            }),
            RunConfig::trackfm(0.25),
            false,
        ),
        (
            "kv_store(memcached)",
            memcached::memcached(&memcached::MemcachedParams {
                keys: 20_000 / s,
                gets: 60_000 / s,
                skew: 1.05,
                seed: 99,
            }),
            RunConfig::trackfm(0.10).with_object_size(64),
            false,
        ),
    ]
}

fn main() {
    println!("guard_motion: interprocedural custody + guard motion gate");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut strict_win = false;

    for (name, spec, base, must_win) in workloads() {
        // Determinism: identical motion outcome (counts and per-site
        // attribution) on every compile of the same module.
        let r1 = TrackFmCompiler::new(base.compiler).compile(&mut spec.module.clone(), None);
        let r2 = TrackFmCompiler::new(base.compiler).compile(&mut spec.module.clone(), None);
        assert_eq!(
            r1.motion, r2.motion,
            "{name}: motion outcome must be deterministic"
        );
        assert_eq!(r1.elision, r2.elision);

        // Execute under both configurations; the runner asserts the
        // checksum, so a semantic deviation aborts loudly.
        let mut off_cfg = base;
        off_cfg.compiler = elide_only(off_cfg.compiler);
        let off = execute(&spec, &off_cfg);
        let on = execute(&spec, &base);

        let off_rep = off.report.as_ref().unwrap();
        let on_rep = on.report.as_ref().unwrap();
        assert_eq!(off_rep.motion, Default::default());

        let (c_off, c_on) = (off.result.stats.cycles, on.result.stats.cycles);
        assert!(
            c_on <= c_off,
            "{name}: interproc+motion increased cycles ({c_off} -> {c_on})"
        );
        if must_win {
            assert!(
                c_on < c_off,
                "{name}: interproc+motion must strictly beat elide-only \
                 ({c_off} -> {c_on})"
            );
            assert!(on_rep.motion.hoisted >= 1, "{name}: nothing was hoisted");
            strict_win = true;
        }

        let surviving_off = off_rep.total_guards() - off_rep.elision.eliminated;
        let surviving_on =
            on_rep.total_guards() - on_rep.elision.eliminated - on_rep.motion.upgraded;
        rows.push(vec![
            name.to_string(),
            surviving_off.to_string(),
            surviving_on.to_string(),
            on_rep.motion.hoisted.to_string(),
            on_rep.motion.upgraded.to_string(),
            c_off.to_string(),
            c_on.to_string(),
            format!("{:.2}%", 100.0 * (c_off - c_on) as f64 / c_off as f64),
        ]);
        json_rows.push(Json::Obj(vec![
            ("workload".into(), Json::str(name)),
            ("guards_elide_only".into(), Json::Int(surviving_off as u64)),
            ("guards_full".into(), Json::Int(surviving_on as u64)),
            ("hoisted".into(), Json::Int(on_rep.motion.hoisted as u64)),
            ("upgraded".into(), Json::Int(on_rep.motion.upgraded as u64)),
            ("cycles_elide_only".into(), Json::Int(c_off)),
            ("cycles_full".into(), Json::Int(c_on)),
        ]));
    }

    print_table(
        "guard_motion (cycles at the row's budget; guards = static sites)",
        &[
            "workload",
            "guards(old)",
            "guards(new)",
            "hoisted",
            "upgraded",
            "cycles(old)",
            "cycles(new)",
            "saved",
        ],
        &rows,
    );
    println!("\n  gate: motion outcomes deterministic; results unchanged;");
    println!("  cycles(full) <= cycles(elide-only) everywhere, strictly less on serving.");

    assert!(strict_win, "the strict-win workload must run");
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("guard_motion")),
        ("strict_win_on_serving".into(), Json::Bool(strict_win)),
        ("rows".into(), Json::Arr(json_rows)),
    ]);
    std::fs::write("BENCH_guard_motion.json", doc.to_string_pretty())
        .expect("write BENCH_guard_motion.json");
    println!("  wrote BENCH_guard_motion.json");
}
