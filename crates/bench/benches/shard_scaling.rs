//! Shard scaling: the stream workload as the far heap spreads over
//! 1/2/4/8 remote nodes.
//!
//! Each shard owns an independent link, so the bandwidth (occupancy)
//! serialization that a single wire imposes on prefetch volleys relaxes as
//! shards are added: aggregate wire-busy cycles stay put (the same bytes
//! move), but they overlap, so the *per-shard* occupancy — the longest any
//! one wire is busy — drops and stalls shrink. The table reports both,
//! plus the balance across shards (max/mean fetches, 1.00 = perfectly
//! even).
//!
//! Before the sweep, two identities are asserted, not assumed:
//! `sharded(1)` costs exactly what `SingleNode` does, and every shard
//! count computes the same answer.

use tfm_bench::{f2, print_table, scale};
use tfm_net::BackendSpec;
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{sum, StreamParams};

fn main() {
    let spec = sum(&StreamParams {
        elems: (2 << 20) / scale(),
    });
    let cfg = RunConfig::trackfm(0.25);

    // Deterministic identity: one shard is the single-node world, bit for
    // bit — cycles, runtime counters, and the transfer ledger.
    let single = execute(&spec, &cfg);
    let one = execute(&spec, &cfg.with_backend(BackendSpec::sharded(1)));
    assert_eq!(one.result.stats, single.result.stats);
    assert_eq!(one.result.runtime, single.result.runtime);
    assert_eq!(one.result.transfers, single.result.transfers);
    println!("  sharded(1): bit-identical to SingleNode (cycles, counters, ledger)");

    let base = single.result.stats.cycles;
    let mut rows = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        let out = execute(&spec, &cfg.with_shards(shards));
        assert_eq!(
            out.result.ret, single.result.ret,
            "sharding changed the answer"
        );
        let stats = out.result.stats;
        let tx = out.result.transfers.unwrap();
        // Aggregate occupancy: wire-busy cycles summed over shards (the
        // bandwidth term of every completed attempt, faults included —
        // flawless here, so it's exactly the delivered bytes' cost).
        let link = tfm_net::LinkParams::tcp_25g();
        let occupancy = link.occupancy(tx.total_bytes() + tx.fault_wasted_bytes);
        let (max_f, sum_f) = if out.result.shards.is_empty() {
            (tx.fetches, tx.fetches)
        } else {
            (
                out.result
                    .shards
                    .iter()
                    .map(|s| s.stats.fetches)
                    .max()
                    .unwrap(),
                out.result.shards.iter().map(|s| s.stats.fetches).sum(),
            )
        };
        let balance = max_f as f64 * shards as f64 / sum_f.max(1) as f64;
        rows.push(vec![
            shards.to_string(),
            stats.cycles.to_string(),
            f2(base as f64 / stats.cycles as f64),
            stats.stall_cycles.to_string(),
            occupancy.to_string(),
            (occupancy / u64::from(shards)).to_string(),
            f2(balance),
        ]);
    }
    print_table(
        "Shard scaling (stream sum, 25% local): aggregate vs. per-shard bandwidth occupancy",
        &[
            "shards",
            "cycles",
            "speedup",
            "stall cycles",
            "aggregate occ",
            "occ/shard",
            "balance",
        ],
        &rows,
    );
    println!(
        "  same bytes on every row: aggregate occupancy is flat, per-shard occupancy \
         divides by N,\n  and whatever stall time the single wire's serialization caused \
         shrinks as volleys overlap."
    );
}
