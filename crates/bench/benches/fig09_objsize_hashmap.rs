//! Fig. 9: impact of the AIFM object size on Zipfian hash-map lookups
//! (claim C3/E3: fine-grained accesses with little spatial locality benefit
//! from small objects).
//!
//! (a) throughput vs. local-memory fraction for each object size;
//! (b) throughput at a fixed 25% budget.

use tfm_bench::{f2, f3, print_table, scale, CLOCK_HZ};
use tfm_workloads::hashmap::{hashmap, HashmapParams};
use tfm_workloads::runner::{execute, RunConfig};

const SIZES: [u64; 5] = [4096, 2048, 1024, 512, 256];

fn main() {
    let p = HashmapParams {
        keys: 200_000 / scale(),
        lookups: 500_000 / scale(),
        ..HashmapParams::default()
    };
    let spec = hashmap(&p);

    // (a) sweep local memory for each object size.
    let mut rows = Vec::new();
    for f in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut row = vec![f2(f)];
        for os in SIZES {
            let out = execute(&spec, &RunConfig::trackfm(f).with_object_size(os));
            let mops = p.lookups as f64 / out.result.seconds(CLOCK_HZ) / 1e6;
            row.push(f3(mops));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 9a: hashmap throughput (MOps/s) vs. local memory, per object size",
        &["local frac", "4KB", "2KB", "1KB", "512B", "256B"],
        &rows,
    );

    // (b) fixed 25%.
    let mut rows = Vec::new();
    for os in SIZES {
        let out = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(os));
        let mops = p.lookups as f64 / out.result.seconds(CLOCK_HZ) / 1e6;
        rows.push(vec![
            format!("{os}B"),
            f3(mops),
            (out.result.bytes_transferred() >> 20).to_string(),
        ]);
    }
    print_table(
        "Fig. 9b: hashmap throughput at 25% local memory",
        &["object size", "MOps/s", "MiB transferred"],
        &rows,
    );
    println!("  paper: smaller objects win under memory pressure (little spatial locality, 4B access granularity).");
}
