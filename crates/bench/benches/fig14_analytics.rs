//! Fig. 14: the taxi-analytics application on TrackFM vs. Fastswap vs. AIFM
//! (claim C8/E8).
//!
//! (a) slowdown vs. local-only as local memory shrinks — TrackFM within 10%
//!     of AIFM under constraint; Fastswap converges only once ~75% of the
//!     working set is local;
//! (b) guard events (TrackFM) vs. major page faults (Fastswap).

use tfm_bench::{f2, print_table, scale};
use tfm_workloads::analytics::{analytics, AnalyticsParams};
use tfm_workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};

fn main() {
    let p = AnalyticsParams {
        rows: 200_000 / scale(),
        groups: 16_000 / scale(),
    };
    let spec = analytics(&p);
    let profile = collect_profile(&spec);
    let local = execute(&spec, &RunConfig::local());
    let base = local.result.stats.cycles as f64;

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut gaps = Vec::new(); // (fraction, gap)
    for f in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let tfm = execute_with_profile(&spec, &RunConfig::trackfm(f), Some(&profile));
        let fsw = execute(&spec, &RunConfig::fastswap(f));
        let aifm = execute_with_profile(&spec, &RunConfig::aifm(f), Some(&profile));
        let s_tfm = tfm.result.stats.cycles as f64 / base;
        let s_fsw = fsw.result.stats.cycles as f64 / base;
        let s_aifm = aifm.result.stats.cycles as f64 / base;
        gaps.push((f, s_tfm / s_aifm - 1.0));
        rows_a.push(vec![f2(f), f2(s_tfm), f2(s_fsw), f2(s_aifm)]);
        rows_b.push(vec![
            f2(f),
            tfm.result.stats.slow_guards().to_string(),
            fsw.result
                .pager
                .map(|p| p.major_faults)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    print_table(
        "Fig. 14a: analytics slowdown vs. local-only",
        &["local frac", "TrackFM", "Fastswap", "AIFM"],
        &rows_a,
    );
    print_table(
        "Fig. 14b: slow-path guard events vs. major page faults (both imply remote ops)",
        &["local frac", "TrackFM slow guards", "Fastswap major faults"],
        &rows_b,
    );
    let constrained = gaps
        .iter()
        .filter(|(f, _)| *f <= 0.5)
        .map(|(_, g)| *g)
        .fold(f64::MIN, f64::max);
    println!(
        "  TrackFM vs. AIFM gap under memory constraint (<=50% local): {:.1}% (paper: within 10%)",
        constrained * 100.0
    );
}
