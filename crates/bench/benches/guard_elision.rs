//! Redundant-guard elimination: what it deletes and what that buys.
//!
//! For each workload, compile with elision off and on, then execute both
//! binaries under identical far-memory pressure. The gate asserts:
//!
//!   1. **Determinism** — compiling twice yields the identical
//!      [`ElisionOutcome`] (counts *and* per-site attribution);
//!   2. **Soundness dividend** — elision never changes the workload's
//!      result (the runner checks the checksum) and never *increases*
//!      simulated cycles, on the quickstart stream as well as the
//!      kv-store (memcached) workload;
//!   3. the before/after guard counts and cycles feed EXPERIMENTS.md.
//!
//! ```sh
//! cargo bench -q -p tfm-bench --bench guard_elision
//! ```

use tfm_bench::{print_table, scale};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::{analytics, kmeans, memcached, nas, stream, WorkloadSpec};
use trackfm::TrackFmCompiler;

fn workloads() -> Vec<(&'static str, WorkloadSpec, RunConfig)> {
    let s = scale();
    vec![
        (
            "quickstart(stream-sum)",
            stream::sum(&stream::StreamParams {
                elems: (1 << 20) / s,
            }),
            RunConfig::trackfm(0.25),
        ),
        (
            "kv_store(memcached)",
            memcached::memcached(&memcached::MemcachedParams {
                keys: 20_000 / s,
                gets: 60_000 / s,
                skew: 1.05,
                seed: 99,
            }),
            RunConfig::trackfm(0.10).with_object_size(64),
        ),
        (
            "analytics",
            analytics::analytics(&analytics::AnalyticsParams {
                rows: 100_000 / s,
                groups: 8_000 / s,
            }),
            RunConfig::trackfm(0.25),
        ),
        (
            "kmeans",
            kmeans::kmeans(&kmeans::KmeansParams {
                points: 4_000 / s,
                dims: 8,
                k: 4,
                iters: 2,
            }),
            RunConfig::trackfm(0.25),
        ),
        (
            "nas-cg",
            nas::cg(&nas::NasParams { shrink: 25 * s }),
            RunConfig::trackfm(0.25),
        ),
    ]
}

fn main() {
    println!("guard_elision: redundant-guard elimination gate");
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (name, spec, base) in workloads() {
        // Determinism: the same module must elide the same guards, with
        // the same per-site attribution, on every compile.
        let opts = base.compiler;
        let r1 = TrackFmCompiler::new(opts).compile(&mut spec.module.clone(), None);
        let r2 = TrackFmCompiler::new(opts).compile(&mut spec.module.clone(), None);
        assert_eq!(
            r1.elision, r2.elision,
            "{name}: elision outcome must be deterministic"
        );

        // Execute with elision off and on; the runner asserts the checksum,
        // so a semantic deviation aborts loudly.
        let mut off_cfg = base;
        off_cfg.compiler.elide_guards = false;
        let off = execute(&spec, &off_cfg);
        let on = execute(&spec, &base);

        let off_rep = off.report.as_ref().unwrap();
        let on_rep = on.report.as_ref().unwrap();
        assert_eq!(off_rep.elision.eliminated, 0);
        let inserted = on_rep.total_guards();
        let elided = on_rep.elision.eliminated;
        let (c_off, c_on) = (off.result.stats.cycles, on.result.stats.cycles);
        assert!(
            c_on <= c_off,
            "{name}: elision increased cycles ({c_off} -> {c_on})"
        );

        rows.push(vec![
            name.to_string(),
            inserted.to_string(),
            elided.to_string(),
            (inserted - elided).to_string(),
            on_rep.elision.upgraded.to_string(),
            c_off.to_string(),
            c_on.to_string(),
            format!("{:.2}%", 100.0 * (c_off - c_on) as f64 / c_off as f64),
        ]);
    }

    print_table(
        "guard_elision (cycles at the row's budget; guards = static sites)",
        &[
            "workload",
            "inserted",
            "elided",
            "surviving",
            "upgraded",
            "cycles(off)",
            "cycles(on)",
            "saved",
        ],
        &rows,
    );
    println!("\n  gate: elision outcomes deterministic; results unchanged;");
    println!("  cycles(on) <= cycles(off) for every workload.");
}
