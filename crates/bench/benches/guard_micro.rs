//! Criterion micro-benchmarks of the *library itself* (real wall-clock, not
//! simulated cycles): guard fast path, state-table lookup, Zipf sampling,
//! allocator, and interpreter dispatch throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_ir::{BinOp, FunctionBuilder, Module, Signature, Type};
use tfm_net::LinkParams;
use tfm_runtime::{FarMemory, FarMemoryConfig, ObjId, PrefetchConfig, RegionAllocator};
use tfm_sim::{ExecStats, LocalMem, Machine, MemorySystem, TrackFmMem};
use tfm_workloads::ZipfGen;
use trackfm::CostModel;

fn fm_config() -> FarMemoryConfig {
    FarMemoryConfig {
        heap_size: 16 << 20,
        object_size: 4096,
        local_budget: 16 << 20,
        link: LinkParams::tcp_25g(),
        prefetch: PrefetchConfig::default(),
    }
}

fn bench_guard_fast_path(c: &mut Criterion) {
    let mut mem = TrackFmMem::new(fm_config(), CostModel::default());
    let ptr = mem.alloc(1 << 20, 0).unwrap();
    let mut stats = ExecStats::default();
    c.bench_function("guard_fast_path", |b| {
        b.iter(|| {
            let (cycles, out) = mem
                .guard(black_box(ptr + 64), false, 0, &mut stats)
                .unwrap();
            black_box((cycles, out))
        })
    });
}

fn bench_state_table_lookup(c: &mut Criterion) {
    let fm = FarMemory::new(fm_config());
    let table = fm.table();
    c.bench_function("state_table_is_safe", |b| {
        b.iter(|| black_box(table.is_safe(black_box(ObjId(17)))))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("region_alloc_free_64B", |b| {
        let mut a = RegionAllocator::new(64 << 20, 4096);
        b.iter(|| {
            let p = a.alloc(black_box(64)).unwrap();
            a.free(p);
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let gen = ZipfGen::new(1_000_000, 1.02);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_sample", |b| b.iter(|| black_box(gen.sample(&mut rng))));
}

fn bench_interpreter_dispatch(c: &mut Criterion) {
    // A tight arithmetic loop: measures instructions-per-second of the
    // interpreter core.
    let mut m = Module::new("spin");
    let id = m.declare_function("main", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let n = b.param(0);
        let zero = b.iconst(Type::I64, 0);
        b.counted_loop(zero, n, 1, |b, i| {
            let x = b.binop(BinOp::Mul, i, i);
            let _ = b.binop(BinOp::Add, x, i);
        });
        b.ret(Some(zero));
    }
    m.verify().unwrap();
    c.bench_function("interpreter_10k_iters", |b| {
        b.iter(|| {
            let mem = LocalMem::new(1 << 16);
            let mut machine = Machine::new(&m, mem, CostModel::default(), 1 << 16);
            black_box(machine.run("main", &[10_000]).unwrap().ret)
        })
    });
}

criterion_group!(
    benches,
    bench_guard_fast_path,
    bench_state_table_lookup,
    bench_allocator,
    bench_zipf,
    bench_interpreter_dispatch
);
criterion_main!(benches);
