//! Micro-benchmarks of the *library itself* (real wall-clock, not simulated
//! cycles): guard fast path, state-table lookup, Zipf sampling, allocator,
//! and interpreter dispatch throughput.
//!
//! Hand-rolled harness (no criterion, so the workspace builds offline):
//! each benchmark is warmed up, then timed over enough iterations for a
//! stable ns/op, with the best-of-several-runs reported to suppress
//! scheduling noise. Pass a substring argument to run a subset.

use std::hint::black_box;
use std::time::Instant;

use tfm_ir::{BinOp, FunctionBuilder, Module, Signature, Type};
use tfm_net::LinkParams;
use tfm_runtime::{FarMemory, FarMemoryConfig, ObjId, RegionAllocator};
use tfm_sim::{ExecStats, LocalMem, Machine, MemorySystem, TrackFmMem};
use tfm_telemetry::Telemetry;
use tfm_workloads::{SplitMix64, ZipfGen};
use trackfm::CostModel;

/// Times `f` (which must run `iters` iterations) and reports the best
/// per-iteration time over `runs` attempts, after one warmup.
fn bench(name: &str, iters: u64, mut f: impl FnMut(u64)) {
    const RUNS: usize = 5;
    f(iters / 10 + 1); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        f(iters);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / iters as f64);
    }
    println!("  {name:<32} {:>10.1} ns/op", best * 1e9);
}

fn fm_config() -> FarMemoryConfig {
    FarMemoryConfig {
        heap_size: 16 << 20,
        object_size: 4096,
        local_budget: 16 << 20,
        link: LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    }
}

fn bench_guard_fast_path(filter: &str) {
    if !"guard_fast_path".contains(filter) {
        return;
    }
    let mut mem = TrackFmMem::new(fm_config(), CostModel::default());
    let ptr = mem.alloc(1 << 20, 0).unwrap();
    let mut stats = ExecStats::default();
    bench("guard_fast_path", 2_000_000, |iters| {
        for _ in 0..iters {
            let (cycles, out) = mem
                .guard(black_box(ptr + 64), false, 0, &mut stats)
                .unwrap();
            black_box((cycles, out));
        }
    });
    // The same fast path with a disabled telemetry handle attached: the
    // acceptance bar for the telemetry layer is <5% regression here.
    mem.set_telemetry(Telemetry::disabled());
    bench("guard_fast_path_tel_disabled", 2_000_000, |iters| {
        for _ in 0..iters {
            let (cycles, out) = mem
                .guard(black_box(ptr + 64), false, 0, &mut stats)
                .unwrap();
            black_box((cycles, out));
        }
    });
}

fn bench_state_table_lookup(filter: &str) {
    if !"state_table_is_safe".contains(filter) {
        return;
    }
    let fm = FarMemory::new(fm_config());
    let table = fm.table();
    bench("state_table_is_safe", 10_000_000, |iters| {
        for _ in 0..iters {
            black_box(table.is_safe(black_box(ObjId(17))));
        }
    });
}

fn bench_allocator(filter: &str) {
    if !"region_alloc_free_64B".contains(filter) {
        return;
    }
    let mut a = RegionAllocator::new(64 << 20, 4096);
    bench("region_alloc_free_64B", 2_000_000, |iters| {
        for _ in 0..iters {
            let p = a.alloc(black_box(64)).unwrap();
            a.free(p);
        }
    });
}

fn bench_zipf(filter: &str) {
    if !"zipf_sample".contains(filter) {
        return;
    }
    let gen = ZipfGen::new(1_000_000, 1.02);
    let mut rng = SplitMix64::seed_from_u64(1);
    bench("zipf_sample", 5_000_000, |iters| {
        for _ in 0..iters {
            black_box(gen.sample(&mut rng));
        }
    });
}

fn bench_interpreter_dispatch(filter: &str) {
    if !"interpreter_10k_iters".contains(filter) {
        return;
    }
    // A tight arithmetic loop: measures instructions-per-second of the
    // interpreter core.
    let mut m = Module::new("spin");
    let id = m.declare_function("main", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let n = b.param(0);
        let zero = b.iconst(Type::I64, 0);
        b.counted_loop(zero, n, 1, |b, i| {
            let x = b.binop(BinOp::Mul, i, i);
            let _ = b.binop(BinOp::Add, x, i);
        });
        b.ret(Some(zero));
    }
    m.verify().unwrap();
    bench("interpreter_10k_iters", 200, |iters| {
        for _ in 0..iters {
            let mem = LocalMem::new(1 << 16);
            let mut machine = Machine::new(&m, mem, CostModel::default(), 1 << 16);
            black_box(machine.run("main", &[10_000]).unwrap().ret);
        }
    });
}

fn main() {
    // Skip flags like `--bench` that `cargo bench` appends.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    println!("guard_micro (best-of-5, wall clock):");
    bench_guard_fast_path(&filter);
    bench_state_table_lookup(&filter);
    bench_allocator(&filter);
    bench_zipf(&filter);
    bench_interpreter_dispatch(&filter);
}
