//! Pay-for-use check for span tracing: with tracing off, the simulation is
//! untouched — simulated cycles are asserted bit-identical across
//! telemetry-off, telemetry-on, and tracing-on runs (tracing observes the
//! timeline, it never participates in it) — and with tracing on, the
//! wall-clock cost of recording ~10⁴ spans plus the windowed timeline
//! stays within a generous constant factor of plain telemetry.
//!
//! Emits `BENCH_trace_overhead.json` (machine-readable rows + the identity
//! verdict) for CI trend tracking.

use std::time::Instant;

use tfm_net::FaultPlan;
use tfm_telemetry::Json;
use tfm_workloads::hashmap::{hashmap, HashmapParams};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::spec::WorkloadSpec;

fn spec() -> WorkloadSpec {
    hashmap(&HashmapParams {
        keys: 4_000,
        lookups: 4_000,
        skew: 1.02,
        seed: 0xC0FFEE,
    })
}

fn chaos(cfg: RunConfig) -> RunConfig {
    // Drops force retries/backoff so traced runs record the full span
    // vocabulary, not just the happy path.
    cfg.with_shards(2)
        .with_faults(FaultPlan::drops(0xBAD_CAB1E, 100_000))
}

/// Best-of-`RUNS` wall-clock seconds for one full workload execution.
fn time_run(spec: &WorkloadSpec, cfg: &RunConfig) -> f64 {
    const RUNS: usize = 5;
    execute(spec, cfg); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        execute(spec, cfg);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let spec = spec();
    let off = chaos(RunConfig::trackfm(0.25));
    let tel = off.with_telemetry(true);
    let traced = off.with_tracing();

    // ------------------------------------------------------------------
    // 1. Deterministic: tracing never perturbs the simulation.
    // ------------------------------------------------------------------
    println!("trace_overhead: pay-for-use checks");
    let c_off = execute(&spec, &off).result.stats.cycles;
    let c_tel = execute(&spec, &tel).result.stats.cycles;
    let c_traced = execute(&spec, &traced).result.stats.cycles;
    assert_eq!(c_off, c_tel, "telemetry must not change simulated cycles");
    assert_eq!(c_tel, c_traced, "tracing must not change simulated cycles");
    println!("  simulated cycles: {c_off} — bit-identical off / telemetry / traced");

    let spans = execute(&spec, &traced)
        .telemetry
        .and_then(|s| s.trace)
        .map(|t| t.spans.len())
        .unwrap_or(0);
    assert!(spans > 0, "the traced run must record spans");

    // ------------------------------------------------------------------
    // 2. Wall clock: what observation costs.
    // ------------------------------------------------------------------
    println!("\ntrace_overhead (best-of-5, wall clock, full run):");
    let t_off = time_run(&spec, &off);
    let t_tel = time_run(&spec, &tel);
    let t_traced = time_run(&spec, &traced);
    for (name, t) in [
        ("telemetry_off", t_off),
        ("telemetry_on", t_tel),
        ("tracing_on", t_traced),
    ] {
        println!("  {name:<16} {:>10.2} ms/run", t * 1e3);
    }
    println!("  {spans} spans/run recorded while tracing");

    // Tracing may cost, but boundedly: a full span arena + timeline must
    // stay within a generous constant factor of plain telemetry. The bound
    // is deliberately loose — this gate catches accidental O(n²) or
    // per-access allocation regressions, not single-digit-percent drift.
    let limit = (t_tel * 20.0).max(t_tel + 0.05);
    assert!(
        t_traced < limit,
        "tracing overhead blew the bound: {:.2} ms vs limit {:.2} ms",
        t_traced * 1e3,
        limit * 1e3
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("trace_overhead".into())),
        ("cycles_identical".into(), Json::Bool(true)),
        ("simulated_cycles".into(), Json::Int(c_off)),
        ("spans_recorded".into(), Json::Int(spans as u64)),
        (
            "wall_ns_per_run".into(),
            Json::Obj(vec![
                ("telemetry_off".into(), Json::Int((t_off * 1e9) as u64)),
                ("telemetry_on".into(), Json::Int((t_tel * 1e9) as u64)),
                ("tracing_on".into(), Json::Int((t_traced * 1e9) as u64)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_trace_overhead.json", doc.to_string_pretty())
        .expect("write BENCH_trace_overhead.json");
    println!("\n  wrote BENCH_trace_overhead.json");
}
