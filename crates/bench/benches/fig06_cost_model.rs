//! Fig. 6: the loop-chunking cost model — speedup of the chunked transform
//! over the baseline transform as object density (elements per object)
//! varies, against the Eq. 3 predicted crossover.
//!
//! Paper: crossover at ~730 elements/object on their hardware. Our cost
//! model's `c_l` puts the predicted crossover at
//! `1 + (c_l − c_s)/(c_f − c_b)` ≈ 76; the *shape* — slowdown below, gain
//! above, empirical crossover matching the prediction — is the claim (C1 of
//! the artifact appendix, experiment E1 analog).

use tfm_bench::{f2, print_table};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::strided_sum;
use trackfm::{ChunkingMode, CostModel};

fn main() {
    let cost = CostModel::default();
    let predicted = cost.density_threshold();
    let object_size = 4096u64;
    let mut rows = Vec::new();
    let mut measured: Vec<(u64, f64)> = Vec::new();

    // Element sizes from 8B (512 per object) to 2KB (2 per object).
    for elem_bytes in [8u32, 16, 32, 64, 128, 256, 512, 1024, 2048] {
        let density = object_size / elem_bytes as u64;
        // Fix the iteration count so total work is constant-ish.
        let elems = (1 << 22) / elem_bytes as usize;
        let spec = strided_sum(elems, elem_bytes);

        let mut naive = RunConfig::trackfm(1.0).with_prefetch(false);
        naive.compiler.chunking = ChunkingMode::Off;
        let mut chunked = RunConfig::trackfm(1.0).with_prefetch(false);
        chunked.compiler.chunking = ChunkingMode::AllLoops;

        let rn = execute(&spec, &naive);
        let rc = execute(&spec, &chunked);
        let speedup = rn.result.stats.cycles as f64 / rc.result.stats.cycles as f64;
        measured.push((density, speedup));
        rows.push(vec![
            density.to_string(),
            f2(speedup),
            if (density as f64) > predicted {
                "chunk"
            } else {
                "skip"
            }
            .to_string(),
        ]);
    }
    rows.reverse(); // ascending density, like the figure's x-axis

    print_table(
        "Fig. 6: chunking speedup vs. elements per object (local memory = 100%)",
        &["elems/object", "speedup vs. naive", "Eq.3 decision"],
        &rows,
    );
    println!(
        "  predicted crossover: d* = {:.0} elements/object",
        predicted
    );
    measured.sort_by_key(|(d, _)| *d);
    if let Some((d, _)) = measured.iter().find(|(_, s)| *s >= 1.0) {
        println!("  empirical crossover: first density with speedup >= 1 is {d}");
    }
    println!("  paper: crossover ~730 on their hardware; shape (loss below, gain above, prediction matches empirics) is the claim.");
}
