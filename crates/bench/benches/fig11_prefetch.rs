//! Fig. 11: speedup of prefetching coupled with loop chunking vs. chunking
//! alone on STREAM Sum/Copy (claim C5/E5). The impact is largest at the
//! left (network-bound) side and fades as local memory grows.

use tfm_bench::{f2, fractions, print_table, scale};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{copy, sum, StreamParams};

fn main() {
    let p = StreamParams {
        elems: (2 << 20) / scale(),
    };
    for (label, spec) in [("Sum", sum(&p)), ("Copy", copy(&p))] {
        let mut rows = Vec::new();
        for f in fractions() {
            let with_pf = execute(&spec, &RunConfig::trackfm(f).with_prefetch(true));
            let without = execute(&spec, &RunConfig::trackfm(f).with_prefetch(false));
            let speedup = without.result.stats.cycles as f64 / with_pf.result.stats.cycles as f64;
            let rt = with_pf.result.runtime.unwrap();
            rows.push(vec![
                f2(f),
                f2(speedup),
                rt.prefetch_hits.to_string(),
                rt.prefetch_late.to_string(),
                without
                    .result
                    .runtime
                    .map(|r| r.remote_fetches)
                    .unwrap_or(0)
                    .to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 11 ({label}): prefetch+chunking speedup over chunking alone"),
            &[
                "local frac",
                "speedup",
                "prefetch hits",
                "prefetch late",
                "demand fetches (no pf)",
            ],
            &rows,
        );
    }
    println!("  paper: up to ~5x at low local memory, fading right as guard costs dominate.");
}
