//! Table 2: primitive overheads — TrackFM slow-path guards vs. Fastswap
//! page faults, with the object/page local and remote.

use tfm_bench::print_table;
use tfm_fastswap::{Pager, PagerConfig, PAGE_SIZE};
use tfm_net::LinkParams;
use tfm_runtime::FarMemoryConfig;
use tfm_sim::{ExecStats, MemorySystem, TrackFmMem};
use trackfm::CostModel;

fn tfm_mem() -> TrackFmMem {
    TrackFmMem::new(
        FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 1 << 20,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        },
        CostModel::default(),
    )
}

fn main() {
    let mut rows = Vec::new();

    // Fastswap faults. "Local cost" in the paper is the kernel fault path
    // with the page in the swap cache; we report the kernel handling cost
    // (minor fault). "Remote" is a major fault over RDMA.
    for (label, write, paper_local, paper_remote) in [
        ("Fastswap read fault", false, 1_300u64, 34_000u64),
        ("Fastswap write fault", true, 1_300, 35_000),
    ] {
        let mut p = Pager::new(PagerConfig::default());
        let local = p.access(0, 8, write, 0);
        p.evacuate_all(local);
        // Measure long after setup so the writeback has drained from the link.
        let remote = p.access(0, 8, write, 10_000_000);
        let _ = PAGE_SIZE;
        rows.push(vec![
            label.to_string(),
            local.to_string(),
            remote.to_string(),
            format!("{paper_local} / {paper_remote}"),
        ]);
    }

    // TrackFM slow-path guards: local (post-prefetch) and remote (demand
    // fetch over TCP).
    for (label, write, paper_local, paper_remote) in [
        ("TrackFM slow-path read guard", false, 453u64, 35_000u64),
        ("TrackFM slow-path write guard", true, 432, 35_000),
    ] {
        let mut st = ExecStats::default();
        let mut m = tfm_mem();
        let ptr = m.alloc(4096, 0).unwrap();
        m.evacuate_all(0);
        m.prefetch_hint(ptr, 0);
        let (local, _) = m.guard(ptr, write, 10_000_000, &mut st).unwrap();

        let mut m = tfm_mem();
        let ptr = m.alloc(4096, 0).unwrap();
        m.evacuate_all(0);
        let (remote, _) = m.guard(ptr, write, 10_000_000, &mut st).unwrap();
        rows.push(vec![
            label.to_string(),
            local.to_string(),
            remote.to_string(),
            format!("{paper_local} / {paper_remote}"),
        ]);
    }

    print_table(
        "Table 2: primitive overheads (cycles)",
        &["event", "local", "remote", "paper local/remote"],
        &rows,
    );
    println!("  note: paper 'local' for Fastswap includes swap-cache handling (1.3K); ours is the kernel minor-fault path.");
    println!("  note: the paper's 453/432-cycle local slow paths include uncached metadata misses we do not model (ours ≈ 144/159 + custody).");
}
