//! Pay-for-use check for crash failover: `replicas(1)` is asserted
//! bit-identical to the plain sharded backend — simulated cycles, every
//! counter, and the byte-for-byte rendered run report — so the replication
//! machinery costs nothing until it is switched on. With it on, the bench
//! prices what redundancy costs: mirrored writebacks on a clean fabric, and
//! the full crash → drain → restart → resync arc under a scripted cold
//! crash, which must end with zero lost acknowledged writebacks.
//!
//! Emits `BENCH_failover.json` (machine-readable rows + the identity
//! verdict) for CI trend tracking.

use tfm_net::{BackendSpec, FaultPlan};
use tfm_telemetry::Json;
use tfm_workloads::runner::{execute, execute_with_report, RunConfig};
use tfm_workloads::spec::WorkloadSpec;
use tfm_workloads::stream::{self, StreamParams};

fn spec() -> WorkloadSpec {
    stream::sum(&StreamParams { elems: 256 << 10 })
}

fn main() {
    let spec = spec();

    // ------------------------------------------------------------------
    // 1. Identity gate: replicas(1) is the plain sharded backend, bit for
    //    bit — cycles, counters, and the rendered report.
    // ------------------------------------------------------------------
    println!("failover_overhead: pay-for-use checks");
    let plain = RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(4));
    let r1 = RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(4).with_replicas(1));
    let (a, rep_a) = execute_with_report(&spec, &plain);
    let (b, rep_b) = execute_with_report(&spec, &r1);
    assert_eq!(
        a.result.stats, b.result.stats,
        "replicas(1) must not change simulated cycles"
    );
    assert_eq!(a.result.runtime, b.result.runtime);
    assert_eq!(a.result.transfers, b.result.transfers);
    assert_eq!(a.result.shards, b.result.shards);
    assert_eq!(
        rep_a.render(),
        rep_b.render(),
        "replicas(1) must render the identical report"
    );
    let base_cycles = a.result.stats.cycles;
    println!("  simulated cycles: {base_cycles} — bit-identical sharded(4) / replicas(1)");

    // ------------------------------------------------------------------
    // 2. What redundancy costs: single node, plain shards, mirrored
    //    writebacks on a clean fabric, and a full crash+recovery run.
    // ------------------------------------------------------------------
    let single = execute(&spec, &RunConfig::trackfm(0.25));
    let r2 = execute(
        &spec,
        &RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(4).with_replicas(2)),
    );
    let crash_cfg = RunConfig::trackfm(0.25)
        .with_backend(BackendSpec::sharded(4).with_replicas(2).with_fault_shard(1))
        .with_faults(FaultPlan::none().with_cold_crash(base_cycles / 8, base_cycles / 2));
    let crashed = execute(&spec, &crash_cfg);

    assert_eq!(r2.result.ret, single.result.ret);
    assert_eq!(
        crashed.result.ret, single.result.ret,
        "a crash must not change the answer"
    );
    let crt = crashed.result.runtime.as_ref().unwrap();
    assert_eq!(
        crt.lost_objects, 0,
        "replicas=2 must not lose acknowledged data"
    );
    assert!(crt.shard_recoveries >= 1, "the crashed shard must rejoin");

    println!("\nfailover_overhead (simulated cycles, full run):");
    let rows = [
        ("single_node", &single),
        ("sharded4_r1", &a),
        ("sharded4_r2", &r2),
        ("sharded4_r2_crash", &crashed),
    ];
    for (name, out) in &rows {
        let tx = out.result.transfers.as_ref().unwrap();
        let rt = out.result.runtime.as_ref().unwrap();
        println!(
            "  {name:<18} {:>9} cycles  {:>7} wb KiB  downs={} recov={} resync={} rerepl={} lost={}",
            out.result.stats.cycles,
            tx.bytes_written_back >> 10,
            rt.shard_downs,
            rt.shard_recoveries,
            rt.resynced_objects,
            rt.re_replications,
            rt.lost_objects,
        );
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("failover_overhead".into())),
        ("replicas1_identical".into(), Json::Bool(true)),
        ("lost_acked_writebacks".into(), Json::Int(crt.lost_objects)),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|(name, out)| {
                        let tx = out.result.transfers.as_ref().unwrap();
                        let rt = out.result.runtime.as_ref().unwrap();
                        Json::Obj(vec![
                            ("config".into(), Json::Str((*name).into())),
                            ("cycles".into(), Json::Int(out.result.stats.cycles)),
                            (
                                "bytes_written_back".into(),
                                Json::Int(tx.bytes_written_back),
                            ),
                            ("shard_downs".into(), Json::Int(rt.shard_downs)),
                            ("shard_recoveries".into(), Json::Int(rt.shard_recoveries)),
                            ("resynced_objects".into(), Json::Int(rt.resynced_objects)),
                            ("re_replications".into(), Json::Int(rt.re_replications)),
                            ("lost_objects".into(), Json::Int(rt.lost_objects)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_failover.json", doc.to_string_pretty())
        .expect("write BENCH_failover.json");
    println!("\n  wrote BENCH_failover.json");
}
