//! Fig. 13: I/O amplification on the Zipfian hashmap — TrackFM with 64 B
//! objects vs. Fastswap's architected 4 KB pages (claim C7/E7).
//!
//! Paper: Fastswap transfers 43× the working set, TrackFM only 2.3×,
//! yielding an average 12× speedup.

use tfm_bench::{f2, merge_all, mib, print_table, scale};
use tfm_workloads::hashmap::{hashmap, HashmapParams};
use tfm_workloads::runner::{execute, RunConfig};

fn main() {
    // Keep the trace small relative to the table (paper: 190 MB trace vs.
    // 2 GB table, ~9%) so the table's access pattern dominates.
    let p = HashmapParams {
        keys: 200_000 / scale(),
        lookups: 100_000 / scale(),
        ..HashmapParams::default()
    };
    let spec = hashmap(&p);
    let ws = spec.working_set() as f64;

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut tfm_transfers = Vec::new();
    let mut fsw_transfers = Vec::new();
    for f in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let tfm = execute(&spec, &RunConfig::trackfm(f).with_object_size(64));
        let fsw = execute(&spec, &RunConfig::fastswap(f));
        tfm_transfers.extend(tfm.result.transfers);
        fsw_transfers.extend(fsw.result.transfers);
        let t_tfm = tfm.result.seconds_2_4ghz();
        let t_fsw = fsw.result.seconds_2_4ghz();
        speedups.push(t_fsw / t_tfm);
        rows.push(vec![
            f2(f),
            format!("{:.3}", t_tfm),
            format!("{:.3}", t_fsw),
            f2(tfm.result.bytes_transferred() as f64 / ws),
            f2(fsw.result.bytes_transferred() as f64 / ws),
        ]);
    }
    print_table(
        "Fig. 13: hashmap — execution time (s @2.4GHz) and data transferred (x working set)",
        &[
            "local frac",
            "TrackFM 64B (s)",
            "Fastswap (s)",
            "tfm xWS",
            "fsw xWS",
        ],
        &rows,
    );
    let tfm_total = merge_all(tfm_transfers);
    let fsw_total = merge_all(fsw_transfers);
    println!(
        "  sweep totals: TrackFM {} fetches / {} MiB moved, Fastswap {} fetches / {} MiB moved",
        tfm_total.fetches,
        mib(tfm_total.total_bytes()),
        fsw_total.fetches,
        mib(fsw_total.total_bytes()),
    );
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "  mean TrackFM speedup over Fastswap: {mean:.1}x (paper: ~12x; amplification 2.3x vs 43x)"
    );
    println!("  note: the paper's 12x needs AIFM's concurrent fetches to hide per-miss latency; our single-threaded");
    println!("  execution model pays full latency per miss on both systems, so the win shows up in bytes moved.");
}
