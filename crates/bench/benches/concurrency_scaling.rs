//! Pay-for-use and scaling check for the deterministic multi-core machine:
//! `cores(1)` is asserted bit-identical to a hand-driven synchronous
//! machine — simulated cycles, every counter, and the byte-for-byte
//! rendered run report — so the scheduler costs nothing until a second
//! core exists. Then the 1/2/4/8-core sweep prices what concurrency buys
//! on a miss-heavy open-loop Zipf key-value workload: the issue/complete
//! split lets cores pipeline the link, and 8 cores must clear at least 4×
//! the simulated-cycle throughput of 1.
//!
//! Emits `BENCH_concurrency.json` (machine-readable rows + the identity
//! verdict) for CI trend tracking.

use tfm_sim::{Machine, TrackFmMem};
use tfm_telemetry::{Histogram, Json, SiteKey, Telemetry};
use tfm_workloads::openloop::{
    execute_open_loop, execute_open_loop_with_report, open_loop, OpenLoopParams, OpenLoopSpec,
};
use tfm_workloads::runner::{self, RunConfig};
use trackfm::TrackFmCompiler;

fn workload() -> OpenLoopSpec {
    // Miss-heavy small-object serving: a 10% local budget with prefetching
    // off makes most gets issue a wire fetch — the regime where splitting
    // issue from completion pays.
    open_loop(&OpenLoopParams {
        keys: 20_000,
        requests: 30_000,
        skew: 1.05,
        seed: 17,
        mean_gap_cycles: 100,
    })
}

fn config() -> RunConfig {
    RunConfig::trackfm(0.1)
        .with_object_size(64)
        .with_prefetch(false)
}

/// Drives the requests by hand on a plain synchronous machine — exactly
/// what the suite did before the scheduler existed — and assembles the
/// identical open-loop report.
fn manual_sync(ol: &OpenLoopSpec, cfg: &RunConfig) -> (tfm_workloads::Outcome, Histogram) {
    let mut module = ol.spec.module.clone();
    let report = TrackFmCompiler::new(cfg.compiler).compile(&mut module, None);
    let mem = TrackFmMem::new(runner::far_config(&ol.spec, cfg), cfg.cost);
    let heap = ol.spec.heap_size(cfg.object_size);
    let mut machine = Machine::new(&module, mem, cfg.cost, heap);
    let args = runner::setup(&ol.spec, &mut machine, false);
    let tel = Telemetry::enabled();
    machine.set_telemetry(tel.clone());
    let mut latency = Histogram::new();
    let mut last = None;
    for req in &ol.requests {
        let start = machine.clock().max(req.arrival);
        machine.set_clock(start);
        let mut call = args.clone();
        call.push(req.key);
        last = Some(machine.run("get", &call).expect("request trapped"));
        latency.record(machine.clock() - req.arrival);
    }
    let mut result = last.expect("at least one request");
    result.stats.cycles = machine.clock();
    let mut telemetry = tel.snapshot();
    if let Some(snap) = &mut telemetry {
        for s in &report.elision.sites {
            snap.sites
                .stats_mut(SiteKey::new(s.func, s.survivor))
                .elided += s.absorbed as u64;
        }
    }
    (
        tfm_workloads::Outcome {
            result,
            report: Some(report),
            telemetry,
        },
        latency,
    )
}

fn main() {
    let ol = workload();
    let cfg = config();
    let requests = ol.requests.len();

    // ------------------------------------------------------------------
    // 1. Identity gate: cores(1) is the synchronous machine, bit for bit —
    //    cycles, counters, and the rendered report.
    // ------------------------------------------------------------------
    println!("concurrency_scaling: pay-for-use checks");
    let (one, rep_one) = execute_open_loop_with_report(&ol, &cfg);
    let cfg_tel = cfg.with_telemetry(true);
    let (manual, manual_lat) = manual_sync(&ol, &cfg_tel);
    assert_eq!(
        one.outcome.result.stats, manual.result.stats,
        "cores(1) must not change simulated cycles"
    );
    assert_eq!(one.outcome.result.runtime, manual.result.runtime);
    assert_eq!(one.outcome.result.transfers, manual.result.transfers);
    let mut manual_rep = runner::build_report(&ol.spec, &cfg_tel, &manual);
    manual_rep.push_meta("cores", 1u32);
    manual_rep.push_meta("requests", requests as u64);
    manual_rep.push_histogram("request_latency_cycles", manual_lat);
    assert_eq!(
        rep_one.render(),
        manual_rep.render(),
        "cores(1) must render the identical report"
    );
    let base = one.makespan;
    println!("  simulated cycles: {base} — bit-identical scheduler(1) / synchronous machine");

    // ------------------------------------------------------------------
    // 2. What concurrency buys: the 1/2/4/8-core sweep.
    // ------------------------------------------------------------------
    println!("\nconcurrency_scaling ({requests} open-loop gets, miss-heavy Zipf):");
    let mut rows = Vec::new();
    for cores in [1u32, 2, 4, 8] {
        let run = execute_open_loop(&ol, &cfg.with_cores(cores));
        let rt = run.outcome.result.runtime.as_ref().unwrap();
        let speedup_x100 = base * 100 / run.makespan;
        println!(
            "  cores={cores}  {:>12} cycles  {:>5}.{:02}x  p50={:>6} p90={:>7} p99={:>7}  joins={}",
            run.makespan,
            speedup_x100 / 100,
            speedup_x100 % 100,
            run.latency.p50(),
            run.latency.p90(),
            run.latency.p99(),
            rt.fetch_joins,
        );
        rows.push((cores, run));
    }
    let eight = &rows.iter().find(|(c, _)| *c == 8).unwrap().1;
    assert!(
        eight.makespan * 4 <= base,
        "8 cores must clear >= 4x the throughput of 1: {} vs {base} cycles",
        eight.makespan
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("concurrency_scaling".into())),
        ("cores1_identical".into(), Json::Bool(true)),
        ("requests".into(), Json::Int(requests as u64)),
        (
            "speedup_8core_x100".into(),
            Json::Int(base * 100 / eight.makespan),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|(cores, run)| {
                        let rt = run.outcome.result.runtime.as_ref().unwrap();
                        Json::Obj(vec![
                            ("cores".into(), Json::Int(*cores as u64)),
                            ("makespan_cycles".into(), Json::Int(run.makespan)),
                            (
                                "throughput_milli".into(),
                                Json::Int(run.throughput_milli(requests)),
                            ),
                            ("latency_p50".into(), Json::Int(run.latency.p50())),
                            ("latency_p90".into(), Json::Int(run.latency.p90())),
                            ("latency_p99".into(), Json::Int(run.latency.p99())),
                            ("remote_fetches".into(), Json::Int(rt.remote_fetches)),
                            ("fetch_joins".into(), Json::Int(rt.fetch_joins)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_concurrency.json", doc.to_string_pretty())
        .expect("write BENCH_concurrency.json");
    println!("\n  wrote BENCH_concurrency.json");
}
