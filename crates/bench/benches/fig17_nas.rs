//! Fig. 17: NAS-like kernels at a 25% local-memory constraint
//! (claims C11/E11).
//!
//! (a) slowdown vs. local-only for Fastswap and TrackFM across CG/FT/IS/
//!     MG/SP plus the geometric mean — TrackFM wins for most kernels; FT is
//!     the outlier (temporal reuse amortizes Fastswap's faults while
//!     TrackFM's loop analysis is confounded and injects a huge number of
//!     guards);
//! (b) FT and SP with the O1 pre-pipeline (TFM/O1): redundant-load
//!     elimination before guard injection removes most of the overhead.

use tfm_bench::{f2, geomean, print_table, scale};
use tfm_workloads::nas::{all, ft, sp, NasParams};
use tfm_workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};

/// Per-application object size, as §3.2 allows ("the choice of object size
/// is currently selected by us"): IS keeps 1024 scattered bucket write
/// heads live, so sub-page objects fit them all locally.
fn object_size_for(name: &str) -> u64 {
    if name.starts_with("nas-is") {
        512
    } else {
        4096
    }
}

fn main() {
    let p = NasParams { shrink: scale() };
    let frac = 0.25;

    // (a)
    let mut rows = Vec::new();
    let mut fsw_ratios = Vec::new();
    let mut tfm_ratios = Vec::new();
    for spec in all(&p) {
        let profile = collect_profile(&spec);
        let loc = execute(&spec, &RunConfig::local());
        let base = loc.result.stats.cycles as f64;
        let fsw = execute(&spec, &RunConfig::fastswap(frac));
        let cfg = RunConfig::trackfm(frac).with_object_size(object_size_for(&spec.name));
        let tfm = execute_with_profile(&spec, &cfg, Some(&profile));
        let s_fsw = fsw.result.stats.cycles as f64 / base;
        let s_tfm = tfm.result.stats.cycles as f64 / base;
        fsw_ratios.push(s_fsw);
        tfm_ratios.push(s_tfm);
        rows.push(vec![
            spec.name.clone(),
            f2(s_fsw),
            f2(s_tfm),
            tfm.result.stats.total_guards().to_string(),
            fsw.result
                .pager
                .map(|p| p.major_faults)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    rows.push(vec![
        "GeoMean".to_string(),
        f2(geomean(&fsw_ratios)),
        f2(geomean(&tfm_ratios)),
        String::new(),
        String::new(),
    ]);
    print_table(
        "Fig. 17a: NAS slowdown vs. local-only at 25% local memory",
        &["kernel", "Fastswap", "TrackFM", "tfm guards", "fsw faults"],
        &rows,
    );

    // (b) FT and SP with O1.
    let mut rows = Vec::new();
    for spec in [ft(&p), sp(&p)] {
        let profile = collect_profile(&spec);
        let loc = execute(&spec, &RunConfig::local());
        let base = loc.result.stats.cycles as f64;
        let fsw = execute(&spec, &RunConfig::fastswap(frac));
        let tfm = execute_with_profile(&spec, &RunConfig::trackfm(frac), Some(&profile));
        let mut o1 = RunConfig::trackfm(frac);
        o1.compiler.o1 = true;
        let tfm_o1 = execute_with_profile(&spec, &o1, Some(&profile));
        rows.push(vec![
            spec.name.clone(),
            f2(fsw.result.stats.cycles as f64 / base),
            f2(tfm.result.stats.cycles as f64 / base),
            f2(tfm_o1.result.stats.cycles as f64 / base),
            format!(
                "{:.1}x",
                tfm.result.stats.loads as f64 / tfm_o1.result.stats.loads.max(1) as f64
            ),
        ]);
    }
    print_table(
        "Fig. 17b: FT/SP slowdown — Fastswap vs. TFM vs. TFM/O1",
        &["kernel", "FSwap", "TFM", "TFM/O1", "load reduction"],
        &rows,
    );
    println!("  paper: O1 cut FT memory instructions 6x and SP 4x, dramatically reducing guard overheads.");
}
