//! Ablations of TrackFM's design choices (beyond the paper's figures):
//!
//! 1. **Prefetch depth** — how far ahead the stride prefetcher should run;
//! 2. **Prefetch provenance** — none vs. runtime stride-detector only vs.
//!    runtime + compiler-directed chunk streams;
//! 3. **Object state table** — the §3.2 optimization that replaces AIFM's
//!    two-memory-reference metadata walk with one indexed load. Ablated by
//!    charging the fast path one extra memory reference;
//! 4. **Locality-guard cost** — how the Eq. 3 crossover moves with `c_l`
//!    (the paper's crossover sits at ~730 because their locality guard is
//!    empirically heavier than ours);
//! 5. **Hybrid compiler+kernel** — §5's "holds promise" suggestion: chunked
//!    streams on the object runtime, guard-free raw accesses with
//!    kernel-style faults, compared against TrackFM and Fastswap.

use tfm_bench::{f2, print_table, scale};
use tfm_workloads::hashmap::{hashmap, HashmapParams};
use tfm_workloads::runner::{execute, RunConfig};
use tfm_workloads::stream::{sum, StreamParams};
use trackfm::CostModel;

fn main() {
    let stream_spec = sum(&StreamParams {
        elems: (1 << 20) / scale(),
    });
    let map_spec = hashmap(&HashmapParams {
        keys: 100_000 / scale(),
        lookups: 200_000 / scale(),
        ..HashmapParams::default()
    });

    // ------------------------------------------------------------------
    // 1. Prefetch depth sweep (STREAM at 10% local).
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for depth in [1u32, 2, 4, 8, 16, 32] {
        let mut cfg = RunConfig::trackfm(0.1);
        cfg.prefetch_depth = depth;
        let out = execute(&stream_spec, &cfg);
        rows.push(vec![
            depth.to_string(),
            out.result.stats.cycles.to_string(),
            out.result
                .runtime
                .map(|r| r.prefetch_late)
                .unwrap_or(0)
                .to_string(),
            out.result.stats.stall_cycles.to_string(),
        ]);
    }
    print_table(
        "Ablation 1: prefetch look-ahead depth (STREAM sum, 10% local)",
        &["depth", "cycles", "late prefetches", "stall cycles"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 2. Prefetch provenance.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    let none = execute(&stream_spec, &RunConfig::trackfm(0.1).with_prefetch(false));
    let runtime_only = {
        let mut c = RunConfig::trackfm(0.1);
        c.compiler.prefetch = false; // no chunk-stream prefetch flags
        c.prefetch = true; // runtime stride detector stays on
        execute(&stream_spec, &c)
    };
    let both = execute(&stream_spec, &RunConfig::trackfm(0.1));
    for (name, out) in [
        ("no prefetching", &none),
        ("runtime stride detector only", &runtime_only),
        ("runtime + compiler streams", &both),
    ] {
        rows.push(vec![
            name.to_string(),
            out.result.stats.cycles.to_string(),
            out.result
                .runtime
                .map(|r| r.prefetch_hits)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    print_table(
        "Ablation 2: who issues prefetches (STREAM sum, 10% local)",
        &["configuration", "cycles", "prefetch hits"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 3. Object state table: +1 memory reference per fast guard without it.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    // Run fully local so guard CPU cost (not network stall) is on display.
    for (name, spec) in [
        ("hashmap (guard-heavy)", &map_spec),
        ("stream (chunked)", &stream_spec),
    ] {
        let with_table = execute(spec, &RunConfig::trackfm(1.0));
        let without = {
            let mut c = RunConfig::trackfm(1.0);
            let extra = c.cost.load_store; // the indirect metadata reference
            c.cost.guard_fast_read += extra;
            c.cost.guard_fast_write += extra;
            c.compiler.cost_model = c.cost;
            execute(spec, &c)
        };
        rows.push(vec![
            name.to_string(),
            with_table.result.stats.cycles.to_string(),
            without.result.stats.cycles.to_string(),
            f2(without.result.stats.cycles as f64 / with_table.result.stats.cycles as f64),
        ]);
    }
    print_table(
        "Ablation 3: object state table (§3.2) vs. AIFM's two-reference metadata",
        &["workload", "with table", "without", "slowdown without"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 4. Locality-guard cost vs. the Eq. 3 crossover.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for cl in [300u64, 800, 1500, 4000, 8000] {
        let cost = CostModel {
            locality_guard: cl,
            ..Default::default()
        };
        rows.push(vec![
            cl.to_string(),
            format!("{:.0}", cost.density_threshold()),
        ]);
    }
    print_table(
        "Ablation 4: locality-guard cost c_l vs. predicted chunking crossover d*",
        &["c_l (cycles)", "d* (elems/object)"],
        &rows,
    );
    println!("  the paper's empirical crossover (~730) corresponds to c_l ≈ 13K on our constants;");
    println!("  our default c_l = 1500 puts d* = 76. Either way Eq. 3 predicts the break-even.");

    // ------------------------------------------------------------------
    // 5. The §5 hybrid (compiler + kernel).
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for f in [0.1, 0.25, 0.5, 1.0] {
        let fsw = execute(&map_spec, &RunConfig::fastswap(f));
        let tfm = execute(&map_spec, &RunConfig::trackfm(f));
        let hyb = execute(&map_spec, &RunConfig::hybrid(f));
        rows.push(vec![
            f2(f),
            fsw.result.stats.cycles.to_string(),
            tfm.result.stats.cycles.to_string(),
            hyb.result.stats.cycles.to_string(),
        ]);
    }
    print_table(
        "Ablation 5: hybrid compiler+kernel (§5) on the Zipf hashmap (cycles)",
        &["local frac", "Fastswap", "TrackFM", "Hybrid"],
        &rows,
    );
    println!("  hybrid = chunk streams + guard-free raw accesses with 1.3K-cycle faults on miss:");
    println!(
        "  it wins where residency is high (no guard tax), and leans on prefetch like TrackFM."
    );
}
