//! Fig. 8: selective (profile + cost-model) loop chunking on k-means vs.
//! chunking all loops, normalized to no chunking (claim C2/E2).
//!
//! Paper: indiscriminate chunking averages a 4× slowdown; the cost model
//! recovers a mean 2.5× speedup over that. The mechanism is the 8-iteration
//! inner distance loops that can never amortize a locality-invariant guard.

use tfm_bench::{f2, fractions, print_table, scale};
use tfm_workloads::kmeans::{kmeans, KmeansParams};
use tfm_workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};
use trackfm::ChunkingMode;

fn main() {
    let p = KmeansParams {
        points: 30_000 / scale(),
        ..KmeansParams::default()
    };
    let spec = kmeans(&p);
    let profile = collect_profile(&spec);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for f in fractions() {
        let mut base = RunConfig::trackfm(f);
        base.compiler.chunking = ChunkingMode::Off;
        let mut all = RunConfig::trackfm(f);
        all.compiler.chunking = ChunkingMode::AllLoops;
        let mut model = RunConfig::trackfm(f);
        model.compiler.chunking = ChunkingMode::CostModel;

        let rb = execute(&spec, &base);
        let ra = execute(&spec, &all);
        let rm = execute_with_profile(&spec, &model, Some(&profile));

        let s_all = rb.result.stats.cycles as f64 / ra.result.stats.cycles as f64;
        let s_model = rb.result.stats.cycles as f64 / rm.result.stats.cycles as f64;
        ratios.push(s_model / s_all);
        rows.push(vec![
            f2(f),
            f2(s_all),
            f2(s_model),
            ra.result.stats.locality_guards.to_string(),
            rm.result.stats.locality_guards.to_string(),
        ]);
    }
    print_table(
        "Fig. 8: k-means speedup vs. no-chunking baseline",
        &[
            "local frac",
            "all loops",
            "high-density only",
            "loc guards (all)",
            "loc guards (model)",
        ],
        &rows,
    );
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("  model-filtered vs. indiscriminate advantage: {avg:.1}x mean (paper: ~4x slowdown undone, ~2.5x mean gain)");
}
