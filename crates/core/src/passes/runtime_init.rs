//! Runtime initialization pass.
//!
//! §3.1: "To make far memory transparent to programmers, this pass inserts
//! hooks in the program's main function to initialize TrackFM's runtime
//! system."

use tfm_ir::{Block, Function, InstData, InstKind, Intrinsic, Module};

/// Inserts `tfm.runtime.init()` at the top of `main_name`'s entry block
/// (after parameters). Idempotent. Returns true if a hook was inserted.
pub fn run(module: &mut Module, main_name: &str) -> bool {
    let Some(id) = module.find_function(main_name) else {
        return false;
    };
    let f = module.function_mut(id);
    let entry = f.entry_block();
    if has_init(f, entry) {
        return false;
    }
    f.insert_at_block_start(
        entry,
        InstData {
            kind: InstKind::IntrinsicCall {
                intr: Intrinsic::RuntimeInit,
                args: vec![],
            },
            ty: None,
            block: entry,
        },
    );
    true
}

fn has_init(f: &Function, b: Block) -> bool {
    f.block_insts(b).iter().any(|&v| {
        matches!(
            f.kind(v),
            InstKind::IntrinsicCall {
                intr: Intrinsic::RuntimeInit,
                ..
            }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature, Type};

    fn module() -> Module {
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![Type::I64], Some(Type::I64)));
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let x = b.param(0);
        b.ret(Some(x));
        m
    }

    #[test]
    fn inserts_hook_after_params() {
        let mut m = module();
        assert!(run(&mut m, "main"));
        m.verify().unwrap();
        let f = m.function(m.find_function("main").unwrap());
        let insts = f.block_insts(f.entry_block());
        // param, init, ret
        assert!(matches!(f.kind(insts[0]), InstKind::Param(_)));
        assert!(matches!(
            f.kind(insts[1]),
            InstKind::IntrinsicCall {
                intr: Intrinsic::RuntimeInit,
                ..
            }
        ));
    }

    #[test]
    fn idempotent() {
        let mut m = module();
        assert!(run(&mut m, "main"));
        assert!(!run(&mut m, "main"));
        let f = m.function(m.find_function("main").unwrap());
        let inits = f
            .block_insts(f.entry_block())
            .iter()
            .filter(|&&v| {
                matches!(
                    f.kind(v),
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::RuntimeInit,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(inits, 1);
    }

    #[test]
    fn missing_main_is_a_noop() {
        let mut m = module();
        assert!(!run(&mut m, "start"));
    }
}
