//! Redundant-guard elimination.
//!
//! A guard is *redundant* when the available-guards dataflow
//! ([`tfm_analysis::guard_check`]) proves that one specific earlier guard
//! already holds custody of the same pointer along **every** path to it,
//! un-killed. Availability on all paths implies the earlier guard dominates
//! the duplicate, so rewriting every use of the duplicate to the earlier
//! guard's canonical result preserves SSA and semantics; the duplicate is
//! then deleted, saving its full fast-path cost (~14 instructions per the
//! paper's Fig. 4 accounting) on every execution.
//!
//! Kind rules: a write guard covers a later read or write guard on the same
//! pointer; a read guard covers only reads. Chunk-dereference custody is
//! never reused (its write intent is a property of the stream, not the
//! value). One extension handles the ubiquitous read-modify-write pattern
//! (`load p; op; store p`): when a *write* guard is covered only by a *read*
//! guard defined in the **same block**, the earlier guard is upgraded in
//! place to `tfm.guard.write` and the later one deleted. The same-block
//! restriction guarantees the store executes whenever the upgraded guard
//! does, so dirty-marking is never added to a path that does not write.
//!
//! Eliminated guards are attributed to the surviving site so telemetry can
//! report per-site elision counts alongside runtime hit counts.

use std::collections::HashMap;
use tfm_analysis::guard_check::{AvailableGuards, CoverSrc, GuardKind};
use tfm_analysis::summaries::ModuleSummaries;
use tfm_ir::{InstKind, Intrinsic, Module, Value};

/// One surviving guard that absorbed eliminated duplicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElidedSite {
    /// Function index of the surviving guard.
    pub func: u32,
    /// Value index of the surviving guard.
    pub survivor: u32,
    /// Duplicates folded into it.
    pub absorbed: u32,
}

/// What the elimination pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElisionOutcome {
    /// Guards deleted outright.
    pub eliminated: usize,
    /// Surviving read guards upgraded to write guards to absorb a
    /// same-block write duplicate (counted inside `eliminated` too).
    pub upgraded: usize,
    /// Per-survivor attribution, in elimination order.
    pub sites: Vec<ElidedSite>,
}

/// Follows the replacement chain to the guard that finally survived.
fn chase(repl: &HashMap<Value, Value>, mut v: Value) -> Value {
    while let Some(&n) = repl.get(&v) {
        v = n;
    }
    v
}

/// Runs redundant-guard elimination over every function of `module` with
/// the conservative intraprocedural call model (every call kills custody).
pub fn run(module: &mut Module) -> ElisionOutcome {
    run_with(module, None)
}

/// [`run`], optionally call-aware: with [`ModuleSummaries`] the
/// available-guards dataflow keeps covers alive across custody-transparent
/// callees (so guards straddling pure helper calls fold), and calls
/// returning canonical guarded pointers act as cover sources whose results
/// later duplicate guards collapse into.
pub fn run_with(module: &mut Module, summaries: Option<&ModuleSummaries>) -> ElisionOutcome {
    let mut outcome = ElisionOutcome::default();
    let mut absorbed: HashMap<(u32, u32), u32> = HashMap::new();
    for fid in module.function_ids().collect::<Vec<_>>() {
        let fx = summaries.map(|s| s.effects_for(fid, module.function(fid)));
        let ag = AvailableGuards::compute_with(module.function(fid), fx);
        let f = module.function_mut(fid);
        // Eliminated guard → its survivor (the analysis was computed on the
        // pre-elimination IR, so cover sources must be chased through it).
        let mut repl: HashMap<Value, Value> = HashMap::new();
        let blocks: Vec<_> = f.blocks().collect();
        for b in blocks {
            let Some(mut map) = ag.block_in(b).cloned() else {
                continue; // unreachable
            };
            for v in f.block_insts(b).to_vec() {
                let InstKind::IntrinsicCall { intr, args } = f.kind(v) else {
                    ag.apply(f, &mut map, v);
                    continue;
                };
                let need = match intr {
                    Intrinsic::GuardRead => GuardKind::Read,
                    Intrinsic::GuardWrite => GuardKind::Write,
                    _ => {
                        ag.apply(f, &mut map, v);
                        continue;
                    }
                };
                let ptr = args[0];
                let Some(cover) = map.get(&ptr).copied() else {
                    ag.apply(f, &mut map, v);
                    continue;
                };
                let CoverSrc::Guard(src) = cover.src else {
                    ag.apply(f, &mut map, v);
                    continue;
                };
                let g = chase(&repl, src);
                if g == v {
                    ag.apply(f, &mut map, v);
                    continue;
                }
                // The survivor's *current* kind (upgrades rewrite the IR).
                let have = match f.kind(g) {
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardRead,
                        ..
                    } => GuardKind::Read,
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardWrite,
                        ..
                    } => GuardKind::Write,
                    // A call returning a canonical guarded pointer: its
                    // cover kind is the callee's return custody. Calls are
                    // never rewritten in place, so the analysis kind is
                    // still current.
                    InstKind::Call { .. } => cover.kind,
                    _ => GuardKind::Chunk, // chunk custody: never reused
                };
                let upgradeable_guard = matches!(
                    f.kind(g),
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardRead,
                        ..
                    }
                );
                let eliminable = if have.covers(need) {
                    true
                } else if upgradeable_guard
                    && have == GuardKind::Read
                    && need == GuardKind::Write
                    && f.inst(g).block == b
                {
                    // Same-block read→write upgrade (RMW pattern): the
                    // duplicate write guard always executes right after the
                    // read guard, so strengthening in place adds
                    // dirty-marking exactly where the store already is.
                    if let InstKind::IntrinsicCall { intr, .. } = &mut f.inst_mut(g).kind {
                        *intr = Intrinsic::GuardWrite;
                    }
                    outcome.upgraded += 1;
                    true
                } else {
                    false
                };
                if eliminable {
                    f.replace_all_uses(v, g);
                    f.remove_inst(v);
                    repl.insert(v, g);
                    outcome.eliminated += 1;
                    *absorbed.entry((fid.0, g.index() as u32)).or_insert(0) += 1;
                    // Skip the transfer: the deleted guard gens nothing, and
                    // `ptr` stays covered by the survivor.
                } else {
                    ag.apply(f, &mut map, v);
                }
            }
        }
    }
    let mut sites: Vec<ElidedSite> = absorbed
        .into_iter()
        .map(|((func, survivor), n)| ElidedSite {
            func,
            survivor,
            absorbed: n,
        })
        .collect();
    sites.sort_by_key(|s| (s.func, s.survivor));
    outcome.sites = sites;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature, Type};

    fn count_guards(m: &Module) -> (usize, usize) {
        let (mut r, mut w) = (0, 0);
        for (_, f) in m.functions() {
            for v in f.live_insts() {
                match f.kind(v) {
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardRead,
                        ..
                    } => r += 1,
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardWrite,
                        ..
                    } => w += 1,
                    _ => {}
                }
            }
        }
        (r, w)
    }

    #[test]
    fn duplicate_read_guard_is_folded() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let (g1, x2);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _x1 = b.load(Type::I64, g1);
            let g2 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            x2 = b.load(Type::I64, g2);
            b.ret(Some(x2));
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 1);
        assert_eq!(out.upgraded, 0);
        assert_eq!(
            out.sites,
            vec![ElidedSite {
                func: id.0,
                survivor: g1.index() as u32,
                absorbed: 1
            }]
        );
        assert_eq!(count_guards(&m), (1, 0));
        // The second load now reads through the first guard's result.
        let f = m.function(id);
        let InstKind::Load { ptr } = *f.kind(x2) else {
            panic!()
        };
        assert_eq!(ptr, g1);
        m.verify().unwrap();
    }

    #[test]
    fn write_guard_covers_later_read_guard() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let g1 = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            b.store(g1, z);
            let g2 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g2);
            b.ret(Some(x));
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 1);
        assert_eq!(count_guards(&m), (0, 1));
        m.verify().unwrap();
    }

    #[test]
    fn rmw_write_guard_upgrades_the_read_guard() {
        // load p; add; store p — the paper's hottest redundant pattern.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g1);
            let one = b.iconst(Type::I64, 1);
            let x2 = b.binop(tfm_ir::BinOp::Add, x, one);
            let g2 = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            b.store(g2, x2);
            b.ret(None);
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 1);
        assert_eq!(out.upgraded, 1);
        // One write guard survives; both the load and the store use it.
        assert_eq!(count_guards(&m), (0, 1));
        m.verify().unwrap();
    }

    #[test]
    fn read_guard_does_not_cover_write_across_blocks() {
        // The store is in a later block: upgrading would dirty-mark paths
        // that never reach the store, so the write guard must survive.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr, Type::I64], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let c = b.param(1);
            let wr = b.create_block();
            let done = b.create_block();
            let g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g1);
            b.cond_br(c, wr, done);
            b.switch_to_block(wr);
            let g2 = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            let z = b.iconst(Type::I64, 7);
            b.store(g2, z);
            b.br(done);
            b.switch_to_block(done);
            b.ret(None);
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 0);
        assert_eq!(out.upgraded, 0);
        assert_eq!(count_guards(&m), (1, 1));
        m.verify().unwrap();
    }

    #[test]
    fn kill_between_guards_blocks_elimination() {
        let mut m = Module::new("t");
        let helper = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(helper));
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g1);
            let _ = b.call(helper, vec![], Some(Type::I64));
            let g2 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g2);
            b.ret(Some(x));
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 0);
        assert_eq!(count_guards(&m), (2, 0));
    }

    #[test]
    fn chains_fold_to_the_first_guard() {
        // g1; g2; g3 on the same pointer: both duplicates land on g1.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let g1;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g1);
            let g2 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g2);
            let g3 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g3);
            b.ret(Some(x));
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 2);
        assert_eq!(out.sites.len(), 1);
        assert_eq!(out.sites[0].absorbed, 2);
        assert_eq!(out.sites[0].survivor, g1.index() as u32);
        assert_eq!(count_guards(&m), (1, 0));
        m.verify().unwrap();
    }

    #[test]
    fn merged_covers_are_not_eliminable() {
        // Different guards on the two paths: the join's duplicate guard has
        // no single canonical result to reuse and must survive.
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let c = b.param(1);
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g1);
            b.br(j);
            b.switch_to_block(e);
            let g2 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g2);
            b.br(j);
            b.switch_to_block(j);
            let g3 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g3);
            b.ret(Some(x));
        }
        let out = run(&mut m);
        assert_eq!(out.eliminated, 0);
        assert_eq!(count_guards(&m), (3, 0));
    }
}
