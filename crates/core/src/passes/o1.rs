//! The "O1" pre-pipeline: classic scalar optimizations run *before* guard
//! injection.
//!
//! §4.5/Fig. 17b: "By default, NOELLE sees unoptimized code from LLVM.
//! However, in our case, it makes more sense to accept pre-optimized code
//! [...] to minimize the number of guards that are injected. For example,
//! redundant code elimination or dead code elimination can reduce the number
//! of loads and stores and thus the number of guards." Running this pipeline
//! cut FT's memory instructions 6× and SP's 4× in the paper.
//!
//! Passes: mem2reg SSA promotion first (the biggest memory-instruction
//! reducer), then — to a fixpoint within a budgeted number of rounds —
//! constant folding, local CSE, redundant-load elimination with
//! store-to-load forwarding (block-local, conservative aliasing), loop
//! invariant code motion, control-flow simplification, and dead-code
//! elimination.

use std::collections::HashMap;
use tfm_analysis::dom::DomTree;
use tfm_analysis::loops::LoopForest;
use tfm_ir::{BinOp, CmpOp, FuncId, Function, InstKind, Module, Type, Value};

/// What the O1 pipeline accomplished (per module).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct O1Outcome {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions deduplicated by CSE.
    pub cse_removed: usize,
    /// Redundant loads eliminated (incl. store-to-load forwards).
    pub loads_eliminated: usize,
    /// Instructions hoisted out of loops.
    pub hoisted: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
    /// CFG simplifications (folded branches + merged blocks).
    pub cfg_simplified: usize,
    /// Stack slots promoted to SSA registers (mem2reg).
    pub promoted_slots: usize,
}

impl O1Outcome {
    fn total(&self) -> usize {
        self.folded
            + self.cse_removed
            + self.loads_eliminated
            + self.hoisted
            + self.dce_removed
            + self.cfg_simplified
            + self.promoted_slots
    }
}

/// Runs the O1 pipeline over every function until no pass makes progress
/// (bounded at 8 rounds).
pub fn run(module: &mut Module) -> O1Outcome {
    // SSA promotion first: it exposes the loads/stores the scalar passes
    // feed on (and is the single biggest memory-instruction reducer).
    let mut total = O1Outcome {
        promoted_slots: crate::passes::mem2reg::run(module),
        ..Default::default()
    };
    for id in module.function_ids().collect::<Vec<_>>() {
        for _ in 0..8 {
            let mut round = O1Outcome::default();
            let f = module.function_mut(id);
            round.folded += constant_fold(f);
            round.cse_removed += local_cse(f);
            round.loads_eliminated += redundant_load_elim(f);
            round.hoisted += licm(module, id);
            round.cfg_simplified += simplify_cfg(module.function_mut(id));
            round.dce_removed += dce(module.function_mut(id));
            let progressed = round.total() > 0;
            total.folded += round.folded;
            total.cse_removed += round.cse_removed;
            total.loads_eliminated += round.loads_eliminated;
            total.hoisted += round.hoisted;
            total.dce_removed += round.dce_removed;
            total.cfg_simplified += round.cfg_simplified;
            if !progressed {
                break;
            }
        }
    }
    total
}

/// Folds integer binops/compares with constant operands.
pub fn constant_fold(f: &mut Function) -> usize {
    let mut n = 0;
    for v in f.live_insts() {
        let folded = match f.kind(v) {
            InstKind::Binary(op, a, b) => match (f.kind(*a), f.kind(*b)) {
                (InstKind::ConstInt(x), InstKind::ConstInt(y)) => fold_int(*op, *x, *y),
                _ => None,
            },
            InstKind::Icmp(op, a, b) => match (f.kind(*a), f.kind(*b)) {
                (InstKind::ConstInt(x), InstKind::ConstInt(y)) => {
                    Some(fold_icmp(*op, *x, *y) as i64)
                }
                _ => None,
            },
            InstKind::Select { cond, tval, fval } => {
                if let InstKind::ConstInt(c) = f.kind(*cond) {
                    let chosen = if *c != 0 { *tval } else { *fval };
                    // Fold by forwarding uses; leave the select for DCE.
                    f.replace_all_uses(v, chosen);
                    n += 1;
                }
                continue;
            }
            _ => None,
        };
        if let Some(c) = folded {
            let ty = f.ty(v);
            let c = truncate(c, ty);
            f.inst_mut(v).kind = InstKind::ConstInt(c);
            n += 1;
        }
    }
    n
}

fn truncate(c: i64, ty: Option<Type>) -> i64 {
    match ty {
        Some(Type::I8) => c as i8 as i64,
        Some(Type::I16) => c as i16 as i64,
        Some(Type::I32) => c as i32 as i64,
        _ => c,
    }
}

fn fold_int(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Sdiv => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Udiv => {
            if y == 0 {
                return None;
            }
            ((x as u64) / (y as u64)) as i64
        }
        BinOp::Srem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::Urem => {
            if y == 0 {
                return None;
            }
            ((x as u64) % (y as u64)) as i64
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Lshr => ((x as u64) >> (y as u32 & 63)) as i64,
        BinOp::Ashr => x.wrapping_shr(y as u32 & 63),
        _ => return None, // float ops are not folded (NaN semantics)
    })
}

fn fold_icmp(op: CmpOp, x: i64, y: i64) -> bool {
    let (ux, uy) = (x as u64, y as u64);
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Slt => x < y,
        CmpOp::Sle => x <= y,
        CmpOp::Sgt => x > y,
        CmpOp::Sge => x >= y,
        CmpOp::Ult => ux < uy,
        CmpOp::Ule => ux <= uy,
        CmpOp::Ugt => ux > uy,
        CmpOp::Uge => ux >= uy,
    }
}

/// Block-local common-subexpression elimination for pure instructions.
pub fn local_cse(f: &mut Function) -> usize {
    let mut n = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        let mut seen: HashMap<String, Value> = HashMap::new();
        for v in f.block_insts(b).to_vec() {
            let key = match f.kind(v) {
                k @ (InstKind::ConstInt(_)
                | InstKind::ConstFloat(_)
                | InstKind::Binary(..)
                | InstKind::Icmp(..)
                | InstKind::Fcmp(..)
                | InstKind::Cast(..)
                | InstKind::Gep { .. }
                | InstKind::GlobalAddr(_)) => format!("{k:?}|{:?}", f.ty(v)),
                _ => continue,
            };
            match seen.get(&key) {
                Some(&prev) => {
                    f.replace_all_uses(v, prev);
                    f.remove_inst(v);
                    n += 1;
                }
                None => {
                    seen.insert(key, v);
                }
            }
        }
    }
    n
}

/// Block-local redundant-load elimination with store-to-load forwarding.
/// Aliasing is conservative: any store to a different pointer value, call,
/// or intrinsic clobbers all availability.
pub fn redundant_load_elim(f: &mut Function) -> usize {
    let mut n = 0;
    for b in f.blocks().collect::<Vec<_>>() {
        // (ptr value, type) → value currently in memory at that address.
        let mut avail: HashMap<(Value, Type), Value> = HashMap::new();
        for v in f.block_insts(b).to_vec() {
            match f.kind(v).clone() {
                InstKind::Load { ptr } => {
                    let Some(ty) = f.ty(v) else { continue };
                    match avail.get(&(ptr, ty)) {
                        Some(&prev) => {
                            f.replace_all_uses(v, prev);
                            f.remove_inst(v);
                            n += 1;
                        }
                        None => {
                            avail.insert((ptr, ty), v);
                        }
                    }
                }
                InstKind::Store { ptr, val } => {
                    // A store may alias anything we know about (different
                    // SSA pointers can be equal at run time).
                    avail.clear();
                    if let Some(ty) = f.ty(val) {
                        avail.insert((ptr, ty), val);
                    }
                }
                InstKind::Call { .. } | InstKind::IntrinsicCall { .. } => {
                    avail.clear();
                }
                _ => {}
            }
        }
    }
    n
}

/// Loop-invariant code motion for pure instructions whose operands are
/// defined outside the loop. Loads are hoisted only from loops that contain
/// no stores or calls.
pub fn licm(module: &mut Module, func: FuncId) -> usize {
    let f = module.function(func);
    let dt = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    let mut moves: Vec<(Value, Value)> = Vec::new(); // (inst, insert-before anchor)
    let mut moved: std::collections::HashSet<Value> = std::collections::HashSet::new();
    for lp in &forest.loops {
        let Some(pre) = lp.preheader(f) else { continue };
        let Some(anchor) = f.terminator(pre) else {
            continue;
        };
        let loop_has_side_effects = lp.blocks.iter().any(|&b| {
            f.block_insts(b).iter().any(|&v| {
                matches!(
                    f.kind(v),
                    InstKind::Store { .. } | InstKind::Call { .. } | InstKind::IntrinsicCall { .. }
                )
            })
        });
        // Iterate to a local fixpoint so chains of invariant ops hoist.
        let mut changed = true;
        let mut hoisted_here: std::collections::HashSet<Value> = Default::default();
        while changed {
            changed = false;
            for &b in &lp.blocks {
                for &v in f.block_insts(b) {
                    if moved.contains(&v) || hoisted_here.contains(&v) {
                        continue;
                    }
                    let hoistable = match f.kind(v) {
                        InstKind::ConstInt(_)
                        | InstKind::ConstFloat(_)
                        | InstKind::Binary(..)
                        | InstKind::Icmp(..)
                        | InstKind::Fcmp(..)
                        | InstKind::Cast(..)
                        | InstKind::Gep { .. }
                        | InstKind::GlobalAddr(_)
                        | InstKind::Select { .. } => true,
                        InstKind::Load { .. } => !loop_has_side_effects,
                        _ => false,
                    };
                    if !hoistable {
                        continue;
                    }
                    let mut invariant = true;
                    f.kind(v).for_each_operand(|op| {
                        let def_in_loop = lp.contains(f.inst(op).block);
                        if def_in_loop && !hoisted_here.contains(&op) {
                            invariant = false;
                        }
                    });
                    if invariant {
                        hoisted_here.insert(v);
                        moves.push((v, anchor));
                        moved.insert(v);
                        changed = true;
                    }
                }
            }
        }
    }
    let count = moves.len();
    let f = module.function_mut(func);
    for (v, anchor) in moves {
        f.move_inst_before(v, anchor);
    }
    count
}

/// Control-flow simplification:
/// * `cond_br` on a constant condition becomes `br` (pruning the dead
///   edge's phi incomings);
/// * `cond_br` with identical targets becomes `br`;
/// * straight-line block pairs (`a` ends in `br b`, `b` has one pred and no
///   phis) are merged.
pub fn simplify_cfg(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let mut changed = false;

        // Branch folding.
        for b in f.blocks().collect::<Vec<_>>() {
            let Some(t) = f.terminator(b) else { continue };
            let InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            } = *f.kind(t)
            else {
                continue;
            };
            if then_bb == else_bb {
                f.inst_mut(t).kind = InstKind::Br(then_bb);
                changed = true;
                n += 1;
                continue;
            }
            if let InstKind::ConstInt(c) = f.kind(cond) {
                let (live, dead) = if *c != 0 {
                    (then_bb, else_bb)
                } else {
                    (else_bb, then_bb)
                };
                f.inst_mut(t).kind = InstKind::Br(live);
                // Remove the dead edge's phi incomings.
                for &v in f.block_insts(dead).to_vec().iter() {
                    if let InstKind::Phi(incs) = f.kind(v) {
                        let pruned: Vec<_> =
                            incs.iter().copied().filter(|(p, _)| *p != b).collect();
                        f.inst_mut(v).kind = InstKind::Phi(pruned);
                    }
                }
                changed = true;
                n += 1;
            }
        }

        // Straight-line merging.
        for a in f.blocks().collect::<Vec<_>>() {
            let Some(t) = f.terminator(a) else { continue };
            let InstKind::Br(b) = *f.kind(t) else {
                continue;
            };
            if b == a || b == f.entry_block() {
                continue;
            }
            if f.preds(b) != vec![a] {
                continue;
            }
            let has_phi = f
                .block_insts(b)
                .iter()
                .any(|&v| matches!(f.kind(v), InstKind::Phi(_)));
            if has_phi {
                // Single-pred phis are just copies: forward them first.
                for &v in f.block_insts(b).to_vec().iter() {
                    if let InstKind::Phi(incs) = f.kind(v).clone() {
                        if incs.len() == 1 {
                            f.replace_all_uses(v, incs[0].1);
                            f.remove_inst(v);
                        }
                    }
                }
                if f.block_insts(b)
                    .iter()
                    .any(|&v| matches!(f.kind(v), InstKind::Phi(_)))
                {
                    continue; // malformed multi-incoming phi; leave alone
                }
            }
            f.merge_straightline(a, b);
            changed = true;
            n += 1;
        }

        // Blocks that became unreachable: clear them and prune their phi
        // incomings from reachable successors.
        let reachable = {
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![f.entry_block()];
            while let Some(b) = stack.pop() {
                if seen.insert(b) {
                    stack.extend(f.succs(b));
                }
            }
            seen
        };
        for b in f.blocks().collect::<Vec<_>>() {
            if reachable.contains(&b) || f.block_insts(b).is_empty() {
                continue;
            }
            for v in f.block_insts(b).to_vec() {
                f.remove_inst(v);
            }
            changed = true;
            n += 1;
        }
        for b in f.blocks().collect::<Vec<_>>() {
            if !reachable.contains(&b) {
                continue;
            }
            for v in f.block_insts(b).to_vec() {
                if let InstKind::Phi(incs) = f.kind(v) {
                    if incs.iter().any(|(p, _)| !reachable.contains(p)) {
                        let pruned: Vec<_> = incs
                            .iter()
                            .copied()
                            .filter(|(p, _)| reachable.contains(p))
                            .collect();
                        f.inst_mut(v).kind = InstKind::Phi(pruned);
                        changed = true;
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }
    n
}

/// Dead-code elimination: removes unused, side-effect-free instructions
/// (parameters are kept — their indices are the ABI).
pub fn dce(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let mut uses = vec![0usize; f.num_insts()];
        for v in f.live_insts() {
            f.kind(v).for_each_operand(|op| uses[op.index()] += 1);
        }
        let mut removed = 0;
        for v in f.live_insts() {
            if uses[v.index()] > 0 {
                continue;
            }
            let kind = f.kind(v);
            if kind.has_side_effects() || matches!(kind, InstKind::Param(_) | InstKind::Nop) {
                continue;
            }
            f.remove_inst(v);
            removed += 1;
        }
        if removed == 0 {
            break;
        }
        n += removed;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature};

    #[test]
    fn folds_constants_and_cleans_up() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let a = b.iconst(Type::I64, 6);
            let c = b.iconst(Type::I64, 7);
            let mul = b.binop(BinOp::Mul, a, c);
            b.ret(Some(mul));
        }
        let out = run(&mut m);
        assert!(out.folded >= 1);
        assert!(out.dce_removed >= 2, "the two source constants die");
        m.verify().unwrap();
        let f = m.function(id);
        let ret = f.terminator(f.entry_block()).unwrap();
        let InstKind::Ret(Some(v)) = f.kind(ret) else {
            panic!()
        };
        assert_eq!(*f.kind(*v), InstKind::ConstInt(42));
    }

    #[test]
    fn folds_div_but_not_by_zero() {
        assert_eq!(fold_int(BinOp::Sdiv, 10, 2), Some(5));
        assert_eq!(fold_int(BinOp::Sdiv, 10, 0), None);
        assert_eq!(fold_int(BinOp::Urem, -1, 10), Some((u64::MAX % 10) as i64));
    }

    #[test]
    fn narrow_types_truncate_on_fold() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I8)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let a = b.iconst(Type::I8, 200);
            let c = b.iconst(Type::I8, 100);
            let s = b.binop(BinOp::Add, a, c);
            b.ret(Some(s));
        }
        constant_fold(m.function_mut(id));
        let f = m.function(id);
        let ret = f.terminator(f.entry_block()).unwrap();
        let InstKind::Ret(Some(v)) = f.kind(ret) else {
            panic!()
        };
        assert_eq!(*f.kind(*v), InstKind::ConstInt(44)); // 300 wraps to 44 in i8
    }

    #[test]
    fn cse_merges_identical_geps() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let i = b.param(1);
            let g1 = b.gep(p, i, 8, 0);
            let g2 = b.gep(p, i, 8, 0);
            let x = b.load(Type::I64, g1);
            b.store(g2, x);
            b.ret(Some(x));
        }
        let n = local_cse(m.function_mut(id));
        assert_eq!(n, 1);
        m.verify().unwrap();
    }

    #[test]
    fn redundant_load_elimination_and_forwarding() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let x1 = b.load(Type::I64, p); // first load
            let x2 = b.load(Type::I64, p); // redundant
            let s = b.binop(BinOp::Add, x1, x2);
            b.store(p, s);
            let x3 = b.load(Type::I64, p); // forwarded from the store
            let t = b.binop(BinOp::Add, s, x3);
            b.ret(Some(t));
        }
        let n = redundant_load_elim(m.function_mut(id));
        assert_eq!(n, 2);
        dce(m.function_mut(id));
        m.verify().unwrap();
        // Only the first load remains.
        let f = m.function(id);
        let loads = f
            .live_insts()
            .into_iter()
            .filter(|&v| matches!(f.kind(v), InstKind::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn stores_clobber_unrelated_availability() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let q = b.param(1);
            let x1 = b.load(Type::I64, p);
            b.store(q, x1); // may alias p!
            let x2 = b.load(Type::I64, p); // must NOT be eliminated
            let s = b.binop(BinOp::Add, x1, x2);
            b.ret(Some(s));
        }
        let n = redundant_load_elim(m.function_mut(id));
        assert_eq!(n, 0);
    }

    #[test]
    fn licm_hoists_invariant_chain() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::I64, Type::I64], Some(Type::I64)),
        );
        let hdr_blocks;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let k = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, _i| {
                // k*k + 1 is invariant.
                let sq = b.binop(BinOp::Mul, k, k);
                let one = b.iconst(Type::I64, 1);
                let _ = b.binop(BinOp::Add, sq, one);
            });
            b.ret(Some(zero));
            hdr_blocks = b.func().num_blocks();
        }
        let _ = hdr_blocks;
        let hoisted = licm(&mut m, id);
        assert!(hoisted >= 3, "expected chain of 3+, got {hoisted}");
        m.verify().unwrap();
    }

    #[test]
    fn licm_does_not_hoist_loads_past_stores() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let n = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, _i| {
                let x = b.load(Type::I64, p); // invariant address, but...
                let one = b.iconst(Type::I64, 1);
                let y = b.binop(BinOp::Add, x, one);
                b.store(p, y); // ...the loop writes through it
            });
            b.ret(Some(zero));
        }
        let f_before: Vec<_> = {
            let f = m.function(id);
            f.live_insts()
                .into_iter()
                .filter(|&v| matches!(f.kind(v), InstKind::Load { .. }))
                .map(|v| f.inst(v).block)
                .collect()
        };
        licm(&mut m, id);
        let f = m.function(id);
        let f_after: Vec<_> = f
            .live_insts()
            .into_iter()
            .filter(|&v| matches!(f.kind(v), InstKind::Load { .. }))
            .map(|v| f.inst(v).block)
            .collect();
        assert_eq!(f_before, f_after, "load must stay in the loop");
    }

    #[test]
    fn simplify_cfg_folds_constant_branches() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            let x = b.param(0);
            let one = b.iconst(Type::I64, 1);
            b.cond_br(one, t, e); // always true
            b.switch_to_block(t);
            let a = b.binop(BinOp::Add, x, x);
            b.br(j);
            b.switch_to_block(e);
            let s = b.binop(BinOp::Sub, x, x);
            b.br(j);
            b.switch_to_block(j);
            let p = b.phi(Type::I64, &[(t, a), (e, s)]);
            b.ret(Some(p));
        }
        m.verify().unwrap();
        let n = simplify_cfg(m.function_mut(id));
        assert!(n >= 1);
        m.verify().unwrap();
        // The dead-edge phi incoming was pruned.
        let f = m.function(id);
        let phis: Vec<_> = f
            .live_insts()
            .into_iter()
            .filter_map(|v| match f.kind(v) {
                InstKind::Phi(incs) => Some(incs.len()),
                _ => None,
            })
            .collect();
        assert!(phis.iter().all(|&l| l == 1), "{phis:?}");
    }

    #[test]
    fn simplify_cfg_merges_straightline_chain() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let b1 = b.create_block();
            let b2 = b.create_block();
            let x = b.param(0);
            b.br(b1);
            b.switch_to_block(b1);
            let y = b.binop(BinOp::Add, x, x);
            b.br(b2);
            b.switch_to_block(b2);
            let z = b.binop(BinOp::Mul, y, y);
            b.ret(Some(z));
        }
        m.verify().unwrap();
        let n = simplify_cfg(m.function_mut(id));
        assert_eq!(n, 2, "both links of the chain merge");
        m.verify().unwrap();
        let f = m.function(id);
        // Everything now lives in the entry block.
        assert_eq!(f.block_insts(f.entry_block()).len(), f.live_insts().len());
    }

    #[test]
    fn simplify_cfg_keeps_loops_intact() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        simplify_cfg(m.function_mut(id));
        m.verify().unwrap();
        // The loop must still loop.
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        assert_eq!(forest.loops.len(), 1);
    }

    #[test]
    fn o1_shrinks_redundant_kernel_like_fig17b() {
        // A caricature of the FT inner loop: the same element is re-loaded
        // for every use. O1 must collapse the loads so the later guard pass
        // has less to instrument.
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::F64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let i = b.param(1);
            let g1 = b.gep(p, i, 8, 0);
            let a1 = b.load(Type::F64, g1);
            let g2 = b.gep(p, i, 8, 0);
            let a2 = b.load(Type::F64, g2);
            let g3 = b.gep(p, i, 8, 0);
            let a3 = b.load(Type::F64, g3);
            let s1 = b.binop(BinOp::Fadd, a1, a2);
            let s2 = b.binop(BinOp::Fadd, s1, a3);
            b.ret(Some(s2));
        }
        let before = m.total_live_insts();
        let out = run(&mut m);
        let after = m.total_live_insts();
        assert!(out.loads_eliminated >= 2);
        assert!(after < before);
        m.verify().unwrap();
        let f = m.function(id);
        let loads = f
            .live_insts()
            .into_iter()
            .filter(|&v| matches!(f.kind(v), InstKind::Load { .. }))
            .count();
        assert_eq!(loads, 1, "3 loads must become 1");
    }
}
