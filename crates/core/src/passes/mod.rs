//! The TrackFM pass pipeline (Fig. 2 of the paper):
//!
//! ```text
//! source IR → [O1 pre-pipeline] → runtime initialization pass
//!           → guard check analysis → loop chunking analysis
//!           → loop chunking transform → guard check transform
//!           → libc transformation pass → far-memory binary
//! ```
//!
//! The O1 pre-pipeline position reflects the paper's Fig. 17b finding: letting
//! classic scalar optimizations run *before* guard injection removes
//! redundant memory instructions and with them most of the injected guards.

pub mod chunking;
pub mod guards;
pub mod libc;
pub mod mem2reg;
pub mod o1;
pub mod runtime_init;
