//! The TrackFM pass pipeline (Fig. 2 of the paper):
//!
//! ```text
//! source IR → [O1 pre-pipeline] → runtime initialization pass
//!           → guard check analysis → loop chunking analysis
//!           → loop chunking transform → guard check transform
//!           → loop-invariant guard motion → redundant-guard elimination
//!           → libc transformation pass
//!           → [tfm-lint soundness check] → far-memory binary
//! ```
//!
//! The O1 pre-pipeline position reflects the paper's Fig. 17b finding: letting
//! classic scalar optimizations run *before* guard injection removes
//! redundant memory instructions and with them most of the injected guards.
//! Guard motion ([`guard_motion`]) hoists loop-invariant guards into
//! preheaders, redundant-guard elimination ([`guard_elim`]) then deletes
//! guards the available-guards dataflow proves duplicated, and the final
//! lint ([`lint`]) machine-checks the guard-coverage invariant on the
//! output. The interprocedural layer ([`tfm_analysis::summaries`]) feeds
//! all three: call-aware kill sets, cross-call parameter/return classes,
//! and custody-transparent callee facts.

pub mod chunking;
pub mod guard_elim;
pub mod guard_motion;
pub mod guards;
pub mod libc;
pub mod lint;
pub mod mem2reg;
pub mod o1;
pub mod runtime_init;
