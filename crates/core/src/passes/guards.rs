//! Guard check analysis + transform.
//!
//! §3.1/§3.3: "TrackFM searches for all LLVM IR-level load and store
//! instructions that correspond to heap allocations (returned by malloc) and
//! marks these instructions as eligible for guard transformation. The pass
//! ignores accesses to stack and global objects [...]. Candidate heap
//! pointers are later transformed by the guard transformation pass."
//!
//! The transform rewrites `load p` into `p' = tfm.guard.read(p); load p'`
//! (and symmetrically for stores). At run time the guard performs the
//! custody check, the object-state-table lookup and — when needed — the
//! slow-path runtime call, returning a canonical localized pointer
//! (Fig. 4).

use tfm_analysis::guard_check::{AvailableGuards, GuardKind};
use tfm_analysis::points_to::{MemClass, PointsTo};
use tfm_analysis::summaries::ModuleSummaries;
use tfm_ir::{FuncId, InstData, InstKind, Intrinsic, Module, Type, Value};

/// Per-function analysis result: accesses that must be guarded.
#[derive(Clone, Debug, Default)]
pub struct GuardPlan {
    /// Loads needing a read guard.
    pub loads: Vec<Value>,
    /// Stores needing a write guard.
    pub stores: Vec<Value>,
}

impl GuardPlan {
    /// Total accesses to be guarded.
    pub fn len(&self) -> usize {
        self.loads.len() + self.stores.len()
    }

    /// True when no guard is needed.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty() && self.stores.is_empty()
    }
}

/// The guard check analysis: classifies every load/store pointer and keeps
/// the ones that may reference the heap. Pointers already localized by a
/// guard or a chunk dereference are skipped (so this composes with the
/// chunking transform, which runs first).
pub fn analyze(module: &Module, func: FuncId) -> GuardPlan {
    analyze_with_locals(module, func, &std::collections::HashSet::new())
}

/// [`analyze`], treating `local_sites` (allocation sites pruned from
/// remoting, §5) as always-local: accesses derived exclusively from them
/// need no guards.
pub fn analyze_with_locals(
    module: &Module,
    func: FuncId,
    local_sites: &std::collections::HashSet<tfm_ir::Value>,
) -> GuardPlan {
    analyze_with_env(module, func, local_sites, None)
}

/// [`analyze_with_locals`], optionally refined by interprocedural
/// [`ModuleSummaries`]. With summaries the pointer classes come from
/// [`ModuleSummaries::points_to_for`] (parameters and call results inherit
/// the classes proven at their call sites), so provably stack / global /
/// local-heap pointers are skipped across function boundaries. A pointer
/// classified `Localized` interprocedurally is only skipped while the
/// call-aware available-guards dataflow proves custody is live at the
/// access (with write intent for stores); otherwise a guard is inserted as
/// a custody-reacquire backstop — exactly where the legacy analysis would
/// have inserted one anyway, so refinement never adds guards.
pub fn analyze_with_env(
    module: &Module,
    func: FuncId,
    local_sites: &std::collections::HashSet<tfm_ir::Value>,
    summaries: Option<&ModuleSummaries>,
) -> GuardPlan {
    let f = module.function(func);
    let mut plan = GuardPlan::default();
    let Some(sums) = summaries else {
        let pt = PointsTo::compute_with_locals(f, local_sites);
        for v in f.live_insts() {
            match f.kind(v) {
                InstKind::Load { ptr } if pt.needs_guard(*ptr) => plan.loads.push(v),
                InstKind::Store { ptr, .. } if pt.needs_guard(*ptr) => plan.stores.push(v),
                _ => {}
            }
        }
        return plan;
    };
    let pt = sums.points_to_for(func, f, local_sites);
    let ag = AvailableGuards::compute_with(f, Some(sums.effects_for(func, f)));
    for b in f.blocks() {
        let Some(mut map) = ag.block_in(b).cloned() else {
            continue; // unreachable
        };
        for &v in f.block_insts(b) {
            let (ptr, is_store) = match f.kind(v) {
                InstKind::Load { ptr } => (*ptr, false),
                InstKind::Store { ptr, .. } => (*ptr, true),
                _ => {
                    ag.apply(f, &mut map, v);
                    continue;
                }
            };
            match pt.class(ptr) {
                MemClass::NonPtr | MemClass::Stack | MemClass::Global | MemClass::LocalHeap => {}
                MemClass::Heap | MemClass::Unknown => {
                    if is_store {
                        plan.stores.push(v);
                    } else {
                        plan.loads.push(v);
                    }
                }
                // Canonical pointer: guard-free only while custody is live.
                // A read cover does not carry write intent, so a store
                // through it still takes a write guard (dirty marking).
                MemClass::Localized => match map.get(&ptr) {
                    Some(c) if !is_store || c.kind != GuardKind::Read => {}
                    _ => {
                        if is_store {
                            plan.stores.push(v);
                        } else {
                            plan.loads.push(v);
                        }
                    }
                },
            }
            ag.apply(f, &mut map, v);
        }
    }
    plan
}

/// The guard transform: applies a [`GuardPlan`], inserting guard intrinsics
/// and rewriting the access pointers. Returns `(read_guards, write_guards)`
/// inserted.
pub fn transform(module: &mut Module, func: FuncId, plan: &GuardPlan) -> (usize, usize) {
    let f = module.function_mut(func);
    for &v in &plan.loads {
        let InstKind::Load { ptr } = *f.kind(v) else {
            continue;
        };
        let guard = f.insert_before(
            v,
            InstData {
                kind: InstKind::IntrinsicCall {
                    intr: Intrinsic::GuardRead,
                    args: vec![ptr],
                },
                ty: Some(Type::Ptr),
                block: f.inst(v).block,
            },
        );
        if let InstKind::Load { ptr } = &mut f.inst_mut(v).kind {
            *ptr = guard;
        }
    }
    for &v in &plan.stores {
        let InstKind::Store { ptr, .. } = *f.kind(v) else {
            continue;
        };
        let guard = f.insert_before(
            v,
            InstData {
                kind: InstKind::IntrinsicCall {
                    intr: Intrinsic::GuardWrite,
                    args: vec![ptr],
                },
                ty: Some(Type::Ptr),
                block: f.inst(v).block,
            },
        );
        if let InstKind::Store { ptr, .. } = &mut f.inst_mut(v).kind {
            *ptr = guard;
        }
    }
    (plan.loads.len(), plan.stores.len())
}

/// A guard site surviving in compiled output: the stable identity the
/// execution engine's telemetry attributes guard costs to. `(func, value)`
/// matches the `SiteKey` the interpreter derives at dispatch; `label` is
/// the human-readable form for reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardSite {
    /// Function index of the guard instruction.
    pub func: u32,
    /// Value index of the guard instruction within its function.
    pub value: u32,
    /// `"{function}:v{value}:{read|write|chunk}"`.
    pub label: String,
}

/// Enumerates every guard and chunk-dereference intrinsic in `module`, in
/// `(func, value)` order. Run after compilation: the result names every
/// site run-time telemetry can attribute cycles to.
pub fn collect_sites(module: &Module) -> Vec<GuardSite> {
    let mut sites = Vec::new();
    for (id, f) in module.functions() {
        for v in f.live_insts() {
            if let InstKind::IntrinsicCall { intr, .. } = f.kind(v) {
                let tag = match intr {
                    Intrinsic::GuardRead => "read",
                    Intrinsic::GuardWrite => "write",
                    Intrinsic::ChunkDeref => "chunk",
                    _ => continue,
                };
                sites.push(GuardSite {
                    func: id.0,
                    value: v.index() as u32,
                    label: format!("{}:v{}:{}", f.name, v.index(), tag),
                });
            }
        }
    }
    sites
}

/// Convenience: analyze + transform every function of the module. Returns
/// total `(read_guards, write_guards)`.
pub fn run(module: &mut Module) -> (usize, usize) {
    let mut totals = (0, 0);
    for id in module.function_ids().collect::<Vec<_>>() {
        let plan = analyze(module, id);
        let (r, w) = transform(module, id, &plan);
        totals.0 += r;
        totals.1 += w;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature};

    #[test]
    fn guards_heap_skips_stack_and_globals() {
        let mut m = Module::new("t");
        let g = m.add_global("lut", 64, None);
        let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let heap = b.malloc_const(64);
            let stack = b.alloca(16, 8);
            let glob = b.global_addr(g);
            let x = b.load(Type::I64, heap); // guard
            b.store(stack, x); // no guard
            let y = b.load(Type::I64, glob); // no guard
            b.store(heap, y); // guard
            b.ret(Some(x));
        }
        let (r, w) = run(&mut m);
        assert_eq!((r, w), (1, 1));
        m.verify().unwrap();

        // Both guards are enumerable as sites, labeled by kind.
        let sites = collect_sites(&m);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().any(|s| s.label.ends_with(":read")));
        assert!(sites.iter().any(|s| s.label.ends_with(":write")));
        assert!(sites.iter().all(|s| s.label.starts_with("main:v")));

        // The guarded load must now go through the guard's result.
        let f = m.function(id);
        let mut guarded_loads = 0;
        for v in f.live_insts() {
            if let InstKind::Load { ptr } = f.kind(v) {
                if matches!(
                    f.kind(*ptr),
                    InstKind::IntrinsicCall {
                        intr: Intrinsic::GuardRead,
                        ..
                    }
                ) {
                    guarded_loads += 1;
                }
            }
        }
        assert_eq!(guarded_loads, 1);
    }

    #[test]
    fn unknown_pointers_are_guarded() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let plan = analyze(&m, id);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn guarded_code_is_not_reguarded() {
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let heap = b.malloc_const(64);
            let x = b.load(Type::I64, heap);
            b.ret(Some(x));
        }
        let (r1, _) = run(&mut m);
        assert_eq!(r1, 1);
        // Running the pass again must not stack a second guard: the access
        // pointer is now Localized.
        let (r2, w2) = run(&mut m);
        assert_eq!((r2, w2), (0, 0));
        m.verify().unwrap();
    }

    #[test]
    fn stored_pointer_values_are_not_guarded() {
        // Storing a heap *value* through a stack pointer needs no guard.
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let heap = b.malloc_const(64);
            let slot = b.alloca(8, 8);
            b.store(slot, heap);
            b.ret(None);
        }
        let plan = analyze(&m, m.find_function("main").unwrap());
        assert!(plan.is_empty());
    }
}
