//! Loop chunking analysis + transform (§3.4, Fig. 5).
//!
//! For loops with a recognized induction variable and strided heap accesses,
//! the transform replaces per-element fast-path guards with:
//!
//! * a `tfm.chunk.begin` in the loop preheader (sets up the stream, carries
//!   write-intent and prefetch flags);
//! * a `tfm.chunk.deref` at each access — a 3-cycle object-boundary check
//!   while the access stays inside the pinned object, and a
//!   locality-invariant guard (runtime call that pins the next object,
//!   unpins the previous one, runs a collection point, and optionally
//!   prefetches ahead) when the boundary is crossed;
//! * a `tfm.chunk.end` on every loop-exit edge (releasing the pin).
//!
//! Whether to apply the transform is governed by the paper's cost model
//! (Eq. 1–3): indiscriminate chunking of low-density or short-trip loops is
//! a slowdown (Figs. 8/15), so [`ChunkingMode::CostModel`] consults the
//! static object density and, when available, the execution profile.

use crate::cost::CostModel;
use std::collections::HashSet;
use tfm_analysis::dom::DomTree;
use tfm_analysis::induction::{basic_ivs, strided_accesses, LoopAccess};
use tfm_analysis::loops::{ensure_preheader, split_edge, LoopForest};
use tfm_analysis::profile::Profile;
use tfm_ir::{
    Block, FuncId, InstData, InstKind, Intrinsic, Module, Type, Value, CHUNK_FLAG_PREFETCH,
    CHUNK_FLAG_WRITE,
};

/// When to apply the chunking transform.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChunkingMode {
    /// Never chunk (the "baseline"/naive arm of Figs. 8/15).
    Off,
    /// Chunk every chunkable loop indiscriminately (the "all loops" arm).
    AllLoops,
    /// Chunk only loops the Eq. 3 cost model (optionally profile-guided)
    /// approves (the "high-density loops only" arm).
    CostModel,
}

/// Options for the chunking pass.
#[derive(Copy, Clone, Debug)]
pub struct ChunkingOptions {
    /// Application mode.
    pub mode: ChunkingMode,
    /// The AIFM object size the compiler selected (needed for density).
    pub object_size: u64,
    /// Whether chunk streams should request stride prefetching.
    pub prefetch: bool,
}

/// What the pass did (feeds the compile report and Figs. 8/15).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkingOutcome {
    /// Chunk streams created (`tfm.chunk.begin` count).
    pub streams: usize,
    /// Accesses rewritten to `tfm.chunk.deref`.
    pub chunked_accesses: usize,
    /// Loops with at least one stream.
    pub chunked_loops: usize,
    /// Candidate streams rejected by the cost model.
    pub skipped_low_benefit: usize,
}

impl ChunkingOutcome {
    fn merge(&mut self, other: ChunkingOutcome) {
        self.streams += other.streams;
        self.chunked_accesses += other.chunked_accesses;
        self.chunked_loops += other.chunked_loops;
        self.skipped_low_benefit += other.skipped_low_benefit;
    }
}

/// Runs chunking on one function.
pub fn run(
    module: &mut Module,
    func: FuncId,
    cost: &CostModel,
    opts: &ChunkingOptions,
    profile: Option<&Profile>,
) -> ChunkingOutcome {
    let mut outcome = ChunkingOutcome::default();
    if opts.mode == ChunkingMode::Off {
        return outcome;
    }
    let mut processed_headers: HashSet<Block> = HashSet::new();
    let mut handled_accesses: HashSet<Value> = HashSet::new();

    // Snapshot profile-derived trip counts on the pristine CFG: later
    // preheader insertion and exit-edge splitting perturb the very edges
    // `loop_entries` counts. Headers are stable across those mutations.
    let mut trips_by_header: std::collections::HashMap<Block, f64> = Default::default();
    if let Some(p) = profile {
        let f = module.function(func);
        let dt = DomTree::compute(f);
        for lp in &LoopForest::compute(f, &dt).loops {
            if let Some(t) = p.avg_trip_count(f, lp) {
                trips_by_header.insert(lp.header, t);
            }
        }
    }

    // Transforming a loop mutates the CFG (preheaders, split exit edges), so
    // we recompute the loop forest after each transformed loop and always
    // pick the innermost unprocessed loop next (inner streams must claim
    // their accesses before enclosing loops see them).
    loop {
        let f = module.function(func);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let Some(lp) = forest
            .loops
            .iter()
            .filter(|l| !processed_headers.contains(&l.header))
            .max_by_key(|l| l.depth)
        else {
            break;
        };
        let lp = lp.clone();
        processed_headers.insert(lp.header);
        let trips = if profile.is_some() {
            trips_by_header.get(&lp.header).copied()
        } else {
            None
        };
        let o = run_on_loop(module, func, &lp, cost, opts, trips, &mut handled_accesses);
        outcome.merge(o);
    }
    outcome
}

fn run_on_loop(
    module: &mut Module,
    func: FuncId,
    lp: &tfm_analysis::loops::NaturalLoop,
    cost: &CostModel,
    opts: &ChunkingOptions,
    avg_trips: Option<f64>,
    handled: &mut HashSet<Value>,
) -> ChunkingOutcome {
    let mut outcome = ChunkingOutcome::default();
    let f = module.function(func);
    let ivs = basic_ivs(f, lp);
    if ivs.is_empty() {
        return outcome;
    }
    let accesses: Vec<LoopAccess> = strided_accesses(f, lp, &ivs)
        .into_iter()
        .filter(|a| !handled.contains(&a.inst) && a.stride != 0)
        .collect();
    if accesses.is_empty() {
        return outcome;
    }

    // Group accesses into streams by (base pointer, IV).
    let mut groups: Vec<(Value, Value, Vec<LoopAccess>)> = Vec::new();
    for a in accesses {
        match groups
            .iter_mut()
            .find(|(b, phi, _)| *b == a.base && *phi == a.iv.phi)
        {
            Some((_, _, list)) => list.push(a),
            None => groups.push((a.base, a.iv.phi, vec![a])),
        }
    }

    let mut approved: Vec<(Value, Vec<LoopAccess>)> = Vec::new();
    for (base, _phi, list) in groups {
        let elem = list.iter().map(|a| a.element_size()).max().unwrap_or(1);
        let density = opts.object_size as f64 / elem as f64;
        let take = match opts.mode {
            ChunkingMode::Off => false,
            ChunkingMode::AllLoops => true,
            ChunkingMode::CostModel => cost.should_chunk(density, avg_trips),
        };
        if take {
            approved.push((base, list));
        } else {
            outcome.skipped_low_benefit += 1;
        }
    }
    if approved.is_empty() {
        return outcome;
    }

    // Transform. All streams of this loop share the preheader and the exit
    // edge splits.
    let f = module.function_mut(func);
    let preheader = ensure_preheader(f, lp);
    let ph_term = f.terminator(preheader).expect("preheader terminated");
    let mut handles = Vec::new();
    for (base, list) in &approved {
        let write = list.iter().any(|a| a.is_store);
        let mut flags = 0;
        if write {
            flags |= CHUNK_FLAG_WRITE;
        }
        if opts.prefetch {
            flags |= CHUNK_FLAG_PREFETCH;
        }
        let flags_c = f.insert_before(
            ph_term,
            InstData {
                kind: InstKind::ConstInt(flags),
                ty: Some(Type::I64),
                block: preheader,
            },
        );
        let handle = f.insert_before(
            ph_term,
            InstData {
                kind: InstKind::IntrinsicCall {
                    intr: Intrinsic::ChunkBegin,
                    args: vec![*base, flags_c],
                },
                ty: Some(Type::I64),
                block: preheader,
            },
        );
        handles.push(handle);
        for a in list {
            let ptr_operand = match f.kind(a.inst) {
                InstKind::Load { ptr } => *ptr,
                InstKind::Store { ptr, .. } => *ptr,
                _ => continue,
            };
            let deref = f.insert_before(
                a.inst,
                InstData {
                    kind: InstKind::IntrinsicCall {
                        intr: Intrinsic::ChunkDeref,
                        args: vec![handle, ptr_operand],
                    },
                    ty: Some(Type::Ptr),
                    block: f.inst(a.inst).block,
                },
            );
            match &mut f.inst_mut(a.inst).kind {
                InstKind::Load { ptr } => *ptr = deref,
                InstKind::Store { ptr, .. } => *ptr = deref,
                _ => unreachable!(),
            }
            handled.insert(a.inst);
            outcome.chunked_accesses += 1;
        }
        outcome.streams += 1;
    }
    outcome.chunked_loops += 1;

    // Release pins on every exit edge.
    for (from, to) in lp.exit_edges(f) {
        let mid = split_edge(f, from, to);
        let mid_term = f.terminator(mid).expect("split block terminated");
        for &h in &handles {
            f.insert_before(
                mid_term,
                InstData {
                    kind: InstKind::IntrinsicCall {
                        intr: Intrinsic::ChunkEnd,
                        args: vec![h],
                    },
                    ty: None,
                    block: mid,
                },
            );
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, FunctionBuilder, Signature};

    fn stream_sum_module(elems: i64, elem_bytes: u32) -> (Module, FuncId) {
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, elems);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(arr, i, elem_bytes, 0);
                let x = b.load(Type::I64, addr);
                let _ = b.binop(BinOp::Add, x, x);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        (m, id)
    }

    fn count_intr(m: &Module, id: FuncId, intr: Intrinsic) -> usize {
        m.function(id)
            .live_insts()
            .into_iter()
            .filter(|&v| {
                matches!(m.function(id).kind(v), InstKind::IntrinsicCall { intr: i, .. } if *i == intr)
            })
            .count()
    }

    fn opts(mode: ChunkingMode) -> ChunkingOptions {
        ChunkingOptions {
            mode,
            object_size: 4096,
            prefetch: true,
        }
    }

    #[test]
    fn chunks_dense_stream_and_stays_valid() {
        let (mut m, id) = stream_sum_module(1000, 8); // density 512 > 75
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::CostModel),
            None,
        );
        assert_eq!(out.streams, 1);
        assert_eq!(out.chunked_accesses, 1);
        assert_eq!(out.chunked_loops, 1);
        assert_eq!(out.skipped_low_benefit, 0);
        m.verify().unwrap();
        assert_eq!(count_intr(&m, id, Intrinsic::ChunkBegin), 1);
        assert_eq!(count_intr(&m, id, Intrinsic::ChunkDeref), 1);
        assert_eq!(count_intr(&m, id, Intrinsic::ChunkEnd), 1);
    }

    #[test]
    fn cost_model_rejects_sparse_stream() {
        // 4096-byte elements in 4096-byte objects: density 1 → never chunk.
        let (mut m, id) = stream_sum_module(1000, 4096);
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::CostModel),
            None,
        );
        assert_eq!(out.streams, 0);
        assert_eq!(out.skipped_low_benefit, 1);
        assert_eq!(count_intr(&m, id, Intrinsic::ChunkDeref), 0);
    }

    #[test]
    fn all_loops_mode_chunks_indiscriminately() {
        let (mut m, id) = stream_sum_module(1000, 4096);
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::AllLoops),
            None,
        );
        assert_eq!(out.streams, 1);
        m.verify().unwrap();
    }

    #[test]
    fn off_mode_does_nothing() {
        let (mut m, id) = stream_sum_module(1000, 8);
        let before = m.total_live_insts();
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::Off),
            None,
        );
        assert_eq!(out, ChunkingOutcome::default());
        assert_eq!(m.total_live_insts(), before);
    }

    #[test]
    fn copy_loop_gets_two_streams_with_write_intent() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "main",
            Signature::new(vec![Type::Ptr, Type::Ptr], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let dst = b.param(0);
            let src = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 1 << 16);
            b.counted_loop(zero, n, 1, |b, i| {
                let saddr = b.gep(src, i, 8, 0);
                let daddr = b.gep(dst, i, 8, 0);
                let x = b.load(Type::I64, saddr);
                b.store(daddr, x);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::CostModel),
            None,
        );
        assert_eq!(out.streams, 2);
        assert_eq!(out.chunked_accesses, 2);
        m.verify().unwrap();
        // One stream must carry the write flag, one must not.
        let f = m.function(id);
        let mut flags_seen = Vec::new();
        for v in f.live_insts() {
            if let InstKind::IntrinsicCall {
                intr: Intrinsic::ChunkBegin,
                args,
            } = f.kind(v)
            {
                if let InstKind::ConstInt(c) = f.kind(args[1]) {
                    flags_seen.push(*c & CHUNK_FLAG_WRITE);
                }
            }
        }
        flags_seen.sort();
        assert_eq!(flags_seen, vec![0, CHUNK_FLAG_WRITE]);
    }

    #[test]
    fn profile_guided_rejects_short_inner_loops() {
        // Nested loops: outer long, inner short (8 iterations). With a
        // profile, only the outer access is chunked — the k-means scenario.
        let mut m = Module::new("t");
        let id = m.declare_function(
            "main",
            Signature::new(vec![Type::Ptr, Type::Ptr], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let big = b.param(0);
            let small = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100_000);
            let d = b.iconst(Type::I64, 8);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(big, i, 8, 0);
                let _ = b.load(Type::I64, addr);
                let z2 = b.iconst(Type::I64, 0);
                b.counted_loop(z2, d, 1, |b, j| {
                    let a2 = b.gep(small, j, 8, 0);
                    let _ = b.load(Type::I64, a2);
                });
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();

        // Build a synthetic profile: outer loop runs 100K iterations, inner
        // runs 8 per entry.
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let mut prof = Profile::new();
        for lp in &forest.loops {
            let pre = lp.preheader(f).unwrap();
            let (entries, iters) = if lp.depth == 1 {
                (1, 100_000)
            } else {
                (100_000, 8)
            };
            for _ in 0..entries {
                prof.count_edge(&f.name, pre, lp.header);
            }
            for _ in 0..(iters * entries) {
                prof.count_block(&f.name, lp.header);
            }
        }

        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::CostModel),
            Some(&prof),
        );
        assert_eq!(out.streams, 1, "only the outer stream should be chunked");
        assert_eq!(out.skipped_low_benefit, 1);
        m.verify().unwrap();
    }

    #[test]
    fn nested_loops_all_mode_chunks_both() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "main",
            Signature::new(vec![Type::Ptr, Type::Ptr], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let a1 = b.param(0);
            let a2 = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 64);
            b.counted_loop(zero, n, 1, |b, i| {
                let p = b.gep(a1, i, 8, 0);
                let _ = b.load(Type::I64, p);
                let z2 = b.iconst(Type::I64, 0);
                b.counted_loop(z2, n, 1, |b, j| {
                    let q = b.gep(a2, j, 8, 0);
                    let x = b.load(Type::I64, q);
                    b.store(q, x);
                });
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let out = run(
            &mut m,
            id,
            &CostModel::default(),
            &opts(ChunkingMode::AllLoops),
            None,
        );
        assert_eq!(out.chunked_loops, 2);
        assert_eq!(out.streams, 2);
        assert_eq!(out.chunked_accesses, 3);
        m.verify().unwrap();
    }
}
