//! `tfm-lint` — the guard-coverage soundness lint.
//!
//! TrackFM's correctness invariant (PAPER.md §3.1, Fig. 4): every load/store
//! that may touch the far-memory heap must go through a guard (or a
//! chunk-boundary dereference) on the same pointer, with no intervening
//! operation that could invalidate custody. The pass pipeline establishes
//! this invariant; this lint *proves* it on the pipeline's output by
//! combining two analyses:
//!
//! * [`points_to::PointsTo`] classifies every accessed pointer. Stack,
//!   global, and pruned-local-heap accesses need no guard. `Heap` and
//!   `Unknown` pointers must never be dereferenced directly.
//! * [`AvailableGuards`] proves, for each `Localized` pointer, that custody
//!   is still live at the access: the pointer is covered on **all** paths
//!   and no kill (call, allocation) intervened.
//!
//! Stores are checked more strictly than loads: the covering custody must
//! carry write intent (a `tfm.guard.write`, or a chunk stream whose
//! `tfm.chunk.begin` flags include the write bit), otherwise dirty tracking
//! is lost and writebacks silently dropped.
//!
//! The lint is wired into the pipeline as a final (optional) verify stage
//! and into CI across every workload, example, and seeded random program.
//! Modules are linted *post*-pipeline, where any surviving `malloc`/`calloc`
//! is a pruned local allocation (see `passes::libc::run_pruned`).

use std::collections::{HashMap, HashSet};
use std::fmt;
use tfm_analysis::guard_check::{AvailableGuards, CoverSrc, GuardKind};
use tfm_analysis::points_to::{MemClass, PointsTo};
use tfm_analysis::summaries::ModuleSummaries;
use tfm_ir::{FuncId, Function, InstKind, Intrinsic, Module, Value, CHUNK_FLAG_WRITE};

/// One uncovered (or wrongly covered) may-heap access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// Function containing the access.
    pub function: String,
    /// Block index of the access.
    pub block: usize,
    /// Value index of the offending instruction.
    pub inst: usize,
    /// Site label in the telemetry `{function}:v{value}:{load|store}`
    /// scheme, so lint reports cross-reference guard-site attribution.
    pub site: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tfm-lint: [{}] err_in `{}` err_at bb{} %{}: {}",
            self.site, self.function, self.block, self.inst, self.message
        )
    }
}

/// True if the chunk stream feeding `cd` (a `tfm.chunk.deref`) was opened
/// with write intent.
fn chunk_has_write_intent(f: &Function, cd: Value) -> Option<bool> {
    let InstKind::IntrinsicCall {
        intr: Intrinsic::ChunkDeref,
        args,
    } = f.kind(cd)
    else {
        return None;
    };
    let InstKind::IntrinsicCall {
        intr: Intrinsic::ChunkBegin,
        args: bargs,
    } = f.kind(args[0])
    else {
        return None;
    };
    let InstKind::ConstInt(flags) = f.kind(bargs[1]) else {
        return None;
    };
    Some(*flags & CHUNK_FLAG_WRITE != 0)
}

/// Post-pipeline, surviving plain malloc/calloc are pruned local allocs.
fn pruned_local_sites(f: &Function) -> HashSet<Value> {
    f.live_insts()
        .into_iter()
        .filter(|&v| {
            matches!(
                f.kind(v),
                InstKind::IntrinsicCall {
                    intr: Intrinsic::Malloc | Intrinsic::Calloc,
                    ..
                }
            )
        })
        .collect()
}

fn lint_function(
    name: &str,
    f: &Function,
    pt: &PointsTo,
    ag: &AvailableGuards,
    errors: &mut Vec<LintError>,
) {
    for b in f.blocks() {
        let Some(mut map) = ag.block_in(b).cloned() else {
            continue; // unreachable
        };
        for &v in f.block_insts(b) {
            let (ptr, is_store) = match f.kind(v) {
                InstKind::Load { ptr } => (*ptr, false),
                InstKind::Store { ptr, .. } => (*ptr, true),
                _ => {
                    ag.apply(f, &mut map, v);
                    continue;
                }
            };
            let what = if is_store { "store" } else { "load" };
            let err = |message: String| LintError {
                function: name.to_string(),
                block: b.index(),
                inst: v.index(),
                site: format!("{name}:v{}:{what}", v.index()),
                message,
            };
            match pt.class(ptr) {
                MemClass::NonPtr | MemClass::Stack | MemClass::Global | MemClass::LocalHeap => {}
                MemClass::Heap | MemClass::Unknown => errors.push(err(format!(
                    "{what} through %{} which may point to the far heap but never \
                     passed through a guard",
                    ptr.index()
                ))),
                MemClass::Localized => match map.get(&ptr) {
                    None => errors.push(err(format!(
                        "{what} through %{}: custody not available on all paths \
                         (guard killed or missing on some path)",
                        ptr.index()
                    ))),
                    Some(cover) if is_store => {
                        let ok = match cover.kind {
                            GuardKind::Write => true,
                            GuardKind::Read => false,
                            GuardKind::Chunk => match cover.src {
                                CoverSrc::Guard(cd) => {
                                    chunk_has_write_intent(f, cd).unwrap_or(false)
                                }
                                CoverSrc::Merged => false,
                            },
                        };
                        if !ok {
                            errors.push(err(format!(
                                "store through %{} whose custody has no write intent \
                                 (dirty tracking would be lost)",
                                ptr.index()
                            )));
                        }
                    }
                    Some(_) => {}
                },
            }
            ag.apply(f, &mut map, v);
        }
    }
}

/// Lints every function of `module`; returns **all** violations found (the
/// pipeline gate is what turns any into a panic).
///
/// The lint always runs at full interprocedural precision, regardless of
/// which transform flags were enabled: summaries are recomputed here so
/// custody-transparent callees keep covers alive, guarded arguments cover
/// callee parameters, and call-site classes refine parameter classification
/// — the verifier must accept everything the (flag-gated) transforms are
/// allowed to produce, while the dynamic sanitizer independently checks the
/// executed path.
pub fn lint_module(module: &Module) -> Vec<LintError> {
    let locals: HashMap<FuncId, HashSet<Value>> = module
        .functions()
        .map(|(fid, f)| (fid, pruned_local_sites(f)))
        .collect();
    let sums = ModuleSummaries::compute_with_locals(module, &[], &locals);
    let mut errors = Vec::new();
    for (fid, f) in module.functions() {
        let pt = sums.points_to_for(fid, f, &locals[&fid]);
        let ag = AvailableGuards::compute_with(f, Some(sums.effects_for(fid, f)));
        lint_function(&f.name, f, &pt, &ag, &mut errors);
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature, Type};

    #[test]
    fn guarded_access_is_clean() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g);
            b.ret(Some(x));
        }
        assert!(lint_module(&m).is_empty());
    }

    #[test]
    fn unguarded_heap_access_is_flagged_with_location() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let x;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let errs = lint_module(&m);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].function, "f");
        assert_eq!(errs[0].block, 0);
        assert_eq!(errs[0].inst, x.index());
        assert!(errs[0].message.contains("never passed through a guard"));
        assert!(errs[0].to_string().contains("bb0"));
    }

    #[test]
    fn guard_result_used_after_a_killing_call_is_flagged() {
        let mut m = Module::new("t");
        // The helper allocates, so it may trigger evacuation: custody dies.
        let h = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let _ = b.malloc_const(8);
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let x;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.call(h, vec![], Some(Type::I64));
            x = b.load(Type::I64, g);
            b.ret(Some(x));
        }
        let errs = lint_module(&m);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("not available on all paths"));
        assert_eq!(errs[0].site, format!("f:v{}:load", x.index()));
        assert!(errs[0].to_string().contains("err_at bb0"));
    }

    #[test]
    fn custody_transparent_callee_keeps_coverage_alive() {
        // Pure helper: the interprocedural lint proves it kills nothing, so
        // the guard before the call still covers the access after it.
        let mut m = Module::new("t");
        let h = m.declare_function("h", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let x = b.param(0);
            let y = b.binop(tfm_ir::BinOp::Add, x, x);
            b.ret(Some(y));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let a = b.load(Type::I64, g);
            let _ = b.call(h, vec![a], Some(Type::I64));
            let x = b.load(Type::I64, g);
            b.ret(Some(x));
        }
        assert!(lint_module(&m).is_empty());
    }

    #[test]
    fn interprocedural_classes_cover_callee_parameter_accesses() {
        // The helper dereferences its parameter raw; every call site passes
        // a pruned local allocation, so the access provably never touches
        // the far heap.
        let mut m = Module::new("t");
        let h = m.declare_function("h", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let loc = b.malloc_const(32);
            let z = b.iconst(Type::I64, 9);
            b.store(loc, z);
            let x = b.call(h, vec![loc], Some(Type::I64));
            b.ret(Some(x));
        }
        assert!(lint_module(&m).is_empty());
    }

    #[test]
    fn guarded_argument_covers_callee_parameter() {
        // Every call site passes a freshly guarded pointer and no kill
        // intervenes: the callee's raw parameter access is covered by the
        // caller's custody (summary entry covers).
        let mut m = Module::new("t");
        let h = m.declare_function("h", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.call(h, vec![g], Some(Type::I64));
            b.ret(Some(x));
        }
        assert!(lint_module(&m).is_empty());
    }

    #[test]
    fn store_through_read_guard_is_flagged() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let z = b.iconst(Type::I64, 1);
            b.store(g, z);
            b.ret(None);
        }
        let errs = lint_module(&m);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("no write intent"));
    }

    #[test]
    fn chunk_write_intent_gates_stores() {
        for (flags, want_errs) in [(0i64, 1usize), (CHUNK_FLAG_WRITE, 0usize)] {
            let mut m = Module::new("t");
            let id = m.declare_function("f", Signature::new(vec![Type::Ptr], None));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let p = b.param(0);
                let fl = b.iconst(Type::I64, flags);
                let h = b.intrinsic(Intrinsic::ChunkBegin, vec![p, fl]);
                let cd = b.intrinsic(Intrinsic::ChunkDeref, vec![h, p]);
                let z = b.iconst(Type::I64, 1);
                b.store(cd, z);
                b.intrinsic(Intrinsic::ChunkEnd, vec![h]);
                b.ret(None);
            }
            assert_eq!(lint_module(&m).len(), want_errs, "flags={flags}");
        }
    }

    #[test]
    fn stack_and_pruned_local_accesses_need_no_guard() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let s = b.alloca(8, 8);
            let z = b.iconst(Type::I64, 3);
            b.store(s, z);
            // Post-pipeline plain malloc == pruned local allocation.
            let loc = b.malloc_const(64);
            b.store(loc, z);
            let x = b.load(Type::I64, loc);
            b.ret(Some(x));
        }
        assert!(lint_module(&m).is_empty());
    }
}
