//! Loop-invariant guard motion.
//!
//! Redundant-guard elimination (the PR-4 pass) only folds guards that are
//! *covered* by an earlier guard on the same pointer. This pass attacks the
//! complementary pattern: a guard executed on **every iteration** of a loop
//! whose pointer never changes. The custody it acquires is identical each
//! time, so the guard is hoisted into the loop preheader and paid once per
//! loop entry instead of once per iteration — the classic loop-invariant
//! code motion, applied to TrackFM guards, with safety conditions specific
//! to custody semantics:
//!
//! 1. **The loop body must be custody-transparent**: no allocation, free,
//!    or other killing intrinsic, and every call provably transparent (via
//!    [`ModuleSummaries`] when supplied — with no summaries any call blocks
//!    hoisting). Otherwise custody acquired in the preheader would lapse
//!    mid-loop and the rewritten accesses would race evacuation.
//! 2. **The guarded pointer must be loop-invariant**, either defined
//!    outside the loop or a pure computation (`gep` / `cast` / arithmetic /
//!    constants) whose leaves are — the chain is moved into the preheader
//!    ahead of the guard.
//! 3. **The guard's block must dominate every latch** (it runs on every
//!    iteration) and the loop must have a **provable trip count ≥ 1**, so
//!    the hoisted guard never executes more often than the original did —
//!    simulated cycles can only shrink.
//!
//! A second, related rewrite handles read-modify-write pairs split across
//! blocks (`guard.read` in one block, `guard.write` of the same pointer in
//! a later block): when the write's block postdominates the read's, sits in
//! exactly the same loops, and dominates the shared loop's latches, the two
//! execute the same number of times — so the read guard is upgraded to a
//! write guard in place and the duplicate deleted, extending the
//! elimination pass's same-block RMW fold across control flow.
//!
//! The pass moves instructions without renumbering them, so guard `Value`
//! ids — and therefore telemetry `SiteKey`s — survive hoisting.

use crate::passes::guard_elim::ElidedSite;
use std::collections::HashMap;
use tfm_analysis::dom::{DomTree, PostDomTree};
use tfm_analysis::guard_check::{AvailableGuards, CoverSrc, GuardKind};
use tfm_analysis::induction::{basic_ivs, static_trip_count};
use tfm_analysis::loops::{LoopForest, NaturalLoop};
use tfm_analysis::summaries::ModuleSummaries;
use tfm_ir::{Block, Function, InstKind, Intrinsic, Module, Value};

/// One guard moved out of (possibly several nested) loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HoistedSite {
    /// Function index of the hoisted guard.
    pub func: u32,
    /// Value index of the hoisted guard (stable across the move).
    pub value: u32,
    /// How many loop levels it was hoisted out of.
    pub levels: u32,
}

/// What guard motion did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MotionOutcome {
    /// Guards hoisted into a preheader (each counted once, however many
    /// levels it climbed).
    pub hoisted: usize,
    /// Cross-block read→write upgrades (the duplicate write guard deleted,
    /// the surviving read guard strengthened in place).
    pub upgraded: usize,
    /// Per-guard hoist attribution.
    pub sites: Vec<HoistedSite>,
    /// Per-survivor attribution of the cross-block folds.
    pub folds: Vec<ElidedSite>,
}

/// Follows the replacement chain to the guard that finally survived.
fn chase(repl: &HashMap<Value, Value>, mut v: Value) -> Value {
    while let Some(&n) = repl.get(&v) {
        v = n;
    }
    v
}

/// True when executing the loop body can never clobber custody: no killing
/// intrinsic, and every call custody-transparent per the summaries (no
/// summaries ⇒ any call blocks hoisting).
fn body_custody_transparent(
    f: &Function,
    lp: &NaturalLoop,
    summaries: Option<&ModuleSummaries>,
) -> bool {
    for &b in &lp.blocks {
        for &v in f.block_insts(b) {
            match f.kind(v) {
                InstKind::IntrinsicCall { intr, .. } => match intr {
                    Intrinsic::GuardRead | Intrinsic::GuardWrite | Intrinsic::ChunkDeref => {}
                    _ => return false,
                },
                InstKind::Call { func, .. }
                    if !summaries.is_some_and(|s| s.summary(*func).custody_transparent()) =>
                {
                    return false;
                }
                _ => {}
            }
        }
    }
    true
}

/// If `ptr` is loop-invariant (or a pure computation over loop-invariant
/// leaves), returns the in-loop instructions to move into the preheader, in
/// def-before-use order (empty when `ptr` is already defined outside).
fn hoistable_chain(f: &Function, lp: &NaturalLoop, ptr: Value) -> Option<Vec<Value>> {
    let mut chain = Vec::new();
    if collect_chain(f, lp, ptr, &mut chain, 0) {
        Some(chain)
    } else {
        None
    }
}

fn collect_chain(
    f: &Function,
    lp: &NaturalLoop,
    v: Value,
    chain: &mut Vec<Value>,
    depth: usize,
) -> bool {
    if !lp.contains(f.inst(v).block) {
        return true; // invariant leaf
    }
    if chain.contains(&v) {
        return true; // already scheduled (shared subexpression)
    }
    if depth > 64 {
        return false;
    }
    let ok = match f.kind(v) {
        InstKind::ConstInt(_) => true,
        InstKind::Gep { base, index, .. } => {
            let (base, index) = (*base, *index);
            collect_chain(f, lp, base, chain, depth + 1)
                && collect_chain(f, lp, index, chain, depth + 1)
        }
        InstKind::Cast(_, a) => {
            let a = *a;
            collect_chain(f, lp, a, chain, depth + 1)
        }
        InstKind::Binary(_, a, b) => {
            let (a, b) = (*a, *b);
            collect_chain(f, lp, a, chain, depth + 1) && collect_chain(f, lp, b, chain, depth + 1)
        }
        _ => false, // phis, loads, calls: variant or impure
    };
    if ok {
        chain.push(v);
    }
    ok
}

/// The cross-block RMW fold over one function. CFG shape is untouched
/// (instructions are only rewritten/deleted), so the dominator structures
/// stay valid throughout.
fn fold_cross_block_rmw(
    module: &mut Module,
    fid: tfm_ir::FuncId,
    summaries: Option<&ModuleSummaries>,
    outcome: &mut MotionOutcome,
    absorbed: &mut HashMap<(u32, u32), u32>,
) {
    let fx = summaries.map(|s| s.effects_for(fid, module.function(fid)));
    let ag = AvailableGuards::compute_with(module.function(fid), fx);
    let f = module.function(fid);
    let dt = DomTree::compute(f);
    let pdt = PostDomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    let f = module.function_mut(fid);
    let mut repl: HashMap<Value, Value> = HashMap::new();
    let blocks: Vec<Block> = f.blocks().collect();
    for b in blocks {
        let Some(mut map) = ag.block_in(b).cloned() else {
            continue; // unreachable
        };
        for v in f.block_insts(b).to_vec() {
            let InstKind::IntrinsicCall {
                intr: Intrinsic::GuardWrite,
                args,
            } = f.kind(v)
            else {
                ag.apply(f, &mut map, v);
                continue;
            };
            let ptr = args[0];
            let foldable = map
                .get(&ptr)
                .copied()
                .and_then(|cover| match cover.src {
                    CoverSrc::Guard(src) => Some((chase(&repl, src), cover.kind)),
                    CoverSrc::Merged => None,
                })
                .filter(|&(g, kind)| {
                    kind == GuardKind::Read
                        && g != v
                        && matches!(
                            f.kind(g),
                            InstKind::IntrinsicCall {
                                intr: Intrinsic::GuardRead,
                                ..
                            }
                        )
                })
                .filter(|&(g, _)| {
                    let b1 = f.inst(g).block;
                    // Same execution count: the write's block postdominates
                    // the read's, both sit in exactly the same loops, and
                    // the write's block dominates the shared innermost
                    // loop's latches (each completed iteration runs both).
                    b1 != b
                        && pdt.postdominates(b, b1)
                        && forest.loops.iter().all(|l| l.contains(b1) == l.contains(b))
                        && forest
                            .innermost_containing(b)
                            .is_none_or(|l| l.latches.iter().all(|&lt| dt.dominates(b, lt)))
                });
            match foldable {
                Some((g, _)) => {
                    if let InstKind::IntrinsicCall { intr, .. } = &mut f.inst_mut(g).kind {
                        *intr = Intrinsic::GuardWrite;
                    }
                    f.replace_all_uses(v, g);
                    f.remove_inst(v);
                    repl.insert(v, g);
                    outcome.upgraded += 1;
                    *absorbed.entry((fid.0, g.index() as u32)).or_insert(0) += 1;
                    // Skip the transfer: `ptr` stays covered by the
                    // (now-write) survivor.
                }
                None => ag.apply(f, &mut map, v),
            }
        }
    }
}

/// One round of hoisting over one function: moves every eligible guard one
/// loop level outward. Returns the guards moved. The CFG is never changed —
/// instructions only migrate between existing blocks — so analyses are
/// recomputed once per round, not per move.
fn hoist_one_level(
    module: &mut Module,
    fid: tfm_ir::FuncId,
    summaries: Option<&ModuleSummaries>,
) -> Vec<Value> {
    let f = module.function(fid);
    let dt = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dt);
    if forest.loops.is_empty() {
        return Vec::new();
    }
    // Per-loop eligibility, resolved once.
    let loop_ok: Vec<Option<Block>> = forest
        .loops
        .iter()
        .map(|lp| {
            let ph = lp.preheader(f)?;
            if !body_custody_transparent(f, lp, summaries) {
                return None;
            }
            let ivs = basic_ivs(f, lp);
            // Trip count ≥ 1 keeps the hoisted guard from running on a
            // zero-trip entry the original never saw.
            match static_trip_count(f, lp, &ivs) {
                Some(t) if t >= 1 => Some(ph),
                _ => None,
            }
        })
        .collect();
    let mut candidates: Vec<(Value, Vec<Value>, Block)> = Vec::new();
    for v in f.live_insts() {
        let InstKind::IntrinsicCall {
            intr: Intrinsic::GuardRead | Intrinsic::GuardWrite,
            args,
        } = f.kind(v)
        else {
            continue;
        };
        let b = f.inst(v).block;
        let Some((idx, lp)) = forest
            .loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(b))
            .min_by_key(|(_, l)| l.blocks.len())
        else {
            continue;
        };
        let Some(ph) = loop_ok[idx] else {
            continue;
        };
        if !lp.latches.iter().all(|&l| dt.dominates(b, l)) {
            continue;
        }
        let Some(chain) = hoistable_chain(f, lp, args[0]) else {
            continue;
        };
        candidates.push((v, chain, ph));
    }
    let f = module.function_mut(fid);
    let mut moved = Vec::new();
    for (g, chain, ph) in candidates {
        let term = f.terminator(ph).expect("preheader must be terminated");
        for c in chain {
            // A shared subexpression may already have migrated with an
            // earlier candidate this round.
            if f.inst(c).block != ph {
                f.move_inst_before(c, term);
            }
        }
        f.move_inst_before(g, term);
        moved.push(g);
    }
    moved
}

/// Runs guard motion over every function: first the cross-block RMW fold,
/// then iterated one-level hoisting until no guard can climb further.
pub fn run(module: &mut Module, summaries: Option<&ModuleSummaries>) -> MotionOutcome {
    let mut outcome = MotionOutcome::default();
    let mut absorbed: HashMap<(u32, u32), u32> = HashMap::new();
    let mut levels: HashMap<(u32, u32), u32> = HashMap::new();
    for fid in module.function_ids().collect::<Vec<_>>() {
        fold_cross_block_rmw(module, fid, summaries, &mut outcome, &mut absorbed);
        loop {
            let moved = hoist_one_level(module, fid, summaries);
            if moved.is_empty() {
                break;
            }
            for g in moved {
                *levels.entry((fid.0, g.index() as u32)).or_insert(0) += 1;
            }
        }
    }
    outcome.hoisted = levels.len();
    outcome.sites = levels
        .into_iter()
        .map(|((func, value), levels)| HoistedSite {
            func,
            value,
            levels,
        })
        .collect();
    outcome.sites.sort_by_key(|s| (s.func, s.value));
    outcome.folds = absorbed
        .into_iter()
        .map(|((func, survivor), n)| ElidedSite {
            func,
            survivor,
            absorbed: n,
        })
        .collect();
    outcome.folds.sort_by_key(|s| (s.func, s.survivor));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, FunctionBuilder, Signature, Type};

    fn guard_blocks(m: &Module) -> Vec<(Value, usize)> {
        let mut out = Vec::new();
        for (_, f) in m.functions() {
            for v in f.live_insts() {
                if let InstKind::IntrinsicCall {
                    intr: Intrinsic::GuardRead | Intrinsic::GuardWrite,
                    ..
                } = f.kind(v)
                {
                    out.push((v, f.inst(v).block.index()));
                }
            }
        }
        out
    }

    /// `for i in 0..n { *p += load(p) }` with an invariant guard: hoists.
    #[test]
    fn invariant_guard_is_hoisted_to_the_preheader() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let g;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100);
            let mut guard = None;
            b.counted_loop(zero, n, 1, |b, _i| {
                let gv = b.intrinsic(Intrinsic::GuardRead, vec![p]);
                let x = b.load(Type::I64, gv);
                let _ = b.binop(BinOp::Add, x, x);
                guard = Some(gv);
            });
            g = guard.unwrap();
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let ph = forest.loops[0].preheader(f).unwrap();

        let out = run(&mut m, None);
        assert_eq!(out.hoisted, 1);
        assert_eq!(
            out.sites,
            vec![HoistedSite {
                func: id.0,
                value: g.index() as u32,
                levels: 1
            }]
        );
        assert_eq!(m.function(id).inst(g).block, ph);
        m.verify().unwrap();
    }

    /// The guarded pointer is a `gep base, iconst` computed in the body:
    /// the pure chain moves with the guard.
    #[test]
    fn pure_operand_chain_is_hoisted_with_the_guard() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 8);
            b.counted_loop(zero, n, 1, |b, _i| {
                let k = b.iconst(Type::I64, 3);
                let addr = b.gep(p, k, 8, 0);
                let gv = b.intrinsic(Intrinsic::GuardRead, vec![addr]);
                let _ = b.load(Type::I64, gv);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let out = run(&mut m, None);
        assert_eq!(out.hoisted, 1);
        m.verify().unwrap();
        // Guard (and its chain) left the loop body: nothing guard-ish
        // remains in any loop block.
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        for (v, blk) in guard_blocks(&m) {
            assert!(
                !forest.loops[0].contains(tfm_ir::Block::from_index(blk)),
                "guard {v} still in loop"
            );
        }
    }

    /// An IV-dependent pointer is variant: no hoist.
    #[test]
    fn variant_pointer_is_not_hoisted() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(p, i, 8, 0);
                let gv = b.intrinsic(Intrinsic::GuardRead, vec![addr]);
                let _ = b.load(Type::I64, gv);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let out = run(&mut m, None);
        assert_eq!(out, MotionOutcome::default());
    }

    /// A call in the body kills custody: no hoist without summaries, hoist
    /// once summaries prove the callee transparent.
    #[test]
    fn calls_block_hoisting_unless_provably_transparent() {
        let build = || {
            let mut m = Module::new("t");
            let h = m.declare_function("h", Signature::new(vec![Type::I64], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(h));
                let x = b.param(0);
                let y = b.binop(BinOp::Add, x, x);
                b.ret(Some(y));
            }
            let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let p = b.param(0);
                let zero = b.iconst(Type::I64, 0);
                let n = b.iconst(Type::I64, 100);
                b.counted_loop(zero, n, 1, |b, i| {
                    let _ = b.call(h, vec![i], Some(Type::I64));
                    let gv = b.intrinsic(Intrinsic::GuardRead, vec![p]);
                    let _ = b.load(Type::I64, gv);
                });
                b.ret(Some(zero));
            }
            m.verify().unwrap();
            m
        };
        let mut m = build();
        assert_eq!(run(&mut m, None), MotionOutcome::default());

        let mut m = build();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        let out = run(&mut m, Some(&sums));
        assert_eq!(out.hoisted, 1);
        m.verify().unwrap();
    }

    /// A while-shaped loop with an unknown bound may run zero times: the
    /// guard must stay inside.
    #[test]
    fn unknown_trip_count_blocks_hoisting() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let n = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, _i| {
                let gv = b.intrinsic(Intrinsic::GuardRead, vec![p]);
                let _ = b.load(Type::I64, gv);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m, None), MotionOutcome::default());
    }

    /// A conditionally executed guard must not be hoisted (it may run far
    /// fewer times than the trip count).
    #[test]
    fn conditional_guard_is_not_hoisted() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let c = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100);
            b.counted_loop(zero, n, 1, |b, _i| {
                let then_bb = b.create_block();
                let join_bb = b.create_block();
                b.cond_br(c, then_bb, join_bb);
                b.switch_to_block(then_bb);
                let gv = b.intrinsic(Intrinsic::GuardRead, vec![p]);
                let _ = b.load(Type::I64, gv);
                b.br(join_bb);
                b.switch_to_block(join_bb);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m, None), MotionOutcome::default());
    }

    /// Nested const-trip loops: the guard climbs both levels.
    #[test]
    fn guard_climbs_out_of_nested_loops() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let g;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 10);
            let mut guard = None;
            b.counted_loop(zero, n, 1, |b, _i| {
                let z2 = b.iconst(Type::I64, 0);
                let m2 = b.iconst(Type::I64, 10);
                b.counted_loop(z2, m2, 1, |b, _j| {
                    let gv = b.intrinsic(Intrinsic::GuardRead, vec![p]);
                    let _ = b.load(Type::I64, gv);
                    guard = Some(gv);
                });
            });
            g = guard.unwrap();
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let out = run(&mut m, None);
        assert_eq!(out.hoisted, 1);
        assert_eq!(out.sites[0].levels, 2);
        m.verify().unwrap();
        // The guard now sits outside every loop.
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let gb = f.inst(g).block;
        assert!(forest.loops.iter().all(|l| !l.contains(gb)));
    }

    /// Cross-block RMW: read guard in the header path, write guard of the
    /// same pointer in a block that postdominates it → upgraded in place.
    #[test]
    fn cross_block_rmw_upgrades_the_read_guard() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let (g1, g2);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let next = b.create_block();
            g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g1);
            b.br(next);
            b.switch_to_block(next);
            let one = b.iconst(Type::I64, 1);
            let x2 = b.binop(BinOp::Add, x, one);
            g2 = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            b.store(g2, x2);
            b.ret(Some(x2));
        }
        m.verify().unwrap();
        let out = run(&mut m, None);
        assert_eq!(out.upgraded, 1);
        assert_eq!(
            out.folds,
            vec![ElidedSite {
                func: id.0,
                survivor: g1.index() as u32,
                absorbed: 1
            }]
        );
        let f = m.function(id);
        assert!(matches!(
            f.kind(g1),
            InstKind::IntrinsicCall {
                intr: Intrinsic::GuardWrite,
                ..
            }
        ));
        m.verify().unwrap();
    }

    /// The write is on a conditional path: upgrading would dirty-mark the
    /// fall-through path, and the counts differ — no fold.
    #[test]
    fn conditional_write_does_not_upgrade_across_blocks() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let c = b.param(1);
            let wr = b.create_block();
            let done = b.create_block();
            let g1 = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g1);
            b.cond_br(c, wr, done);
            b.switch_to_block(wr);
            let g2 = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            b.store(g2, x);
            b.br(done);
            b.switch_to_block(done);
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let out = run(&mut m, None);
        assert_eq!(out.upgraded, 0);
    }
}
