//! mem2reg: promote stack slots to SSA registers (Cytron et al.).
//!
//! Unoptimized front-end output keeps local variables in `alloca` slots with
//! a load/store per use — exactly the "unoptimized code from LLVM" the
//! paper's Fig. 17b discussion starts from. Promoting those slots to SSA
//! values removes the loads and stores entirely, which is the strongest
//! possible form of "reduce the number of loads and stores and thus the
//! number of guards" (§4.5). This pass runs first in the O1 pre-pipeline.
//!
//! An alloca is promotable when every use is a direct, type-consistent
//! `load`/`store` through it (no GEP, no escape as a stored value or call
//! argument). Phi placement uses iterated dominance frontiers; renaming
//! walks the dominator tree.

use std::collections::{HashMap, HashSet};
use tfm_analysis::dom::{dominance_frontier, DomTree};
use tfm_ir::{Block, FuncId, Function, InstData, InstKind, Module, Type, Value};

/// Promotes every promotable alloca in the module. Returns the number of
/// slots promoted.
pub fn run(module: &mut Module) -> usize {
    let mut promoted = 0;
    for id in module.function_ids().collect::<Vec<_>>() {
        promoted += run_on_function(module.function_mut(id), id);
    }
    promoted
}

fn run_on_function(f: &mut Function, _id: FuncId) -> usize {
    let candidates = promotable_allocas(f);
    if candidates.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(f);
    let df = dominance_frontier(f, &dt);
    let children = dt.children();

    // Phi placement: iterated dominance frontier of the store blocks.
    // phi_for[(block, var)] -> phi value.
    let mut phi_for: HashMap<(Block, Value), Value> = HashMap::new();
    for (&var, ty) in &candidates {
        let mut work: Vec<Block> = f
            .live_insts()
            .into_iter()
            .filter(|&v| matches!(f.kind(v), InstKind::Store { ptr, .. } if *ptr == var))
            .map(|v| f.inst(v).block)
            .collect();
        let mut placed: HashSet<Block> = HashSet::new();
        while let Some(b) = work.pop() {
            if !dt.is_reachable(b) {
                continue;
            }
            for &front in &df[b.index()] {
                if placed.insert(front) {
                    let phi = f.insert_at_block_start(
                        front,
                        InstData {
                            kind: InstKind::Phi(Vec::new()),
                            ty: Some(*ty),
                            block: front,
                        },
                    );
                    phi_for.insert((front, var), phi);
                    work.push(front);
                }
            }
        }
    }

    // The value of an uninitialized variable: a zero constant in the entry
    // block (reads before writes are undefined behaviour in the source
    // language; zero is a deterministic choice).
    let mut undef: HashMap<Type, Value> = HashMap::new();
    for (&_var, &ty) in &candidates {
        undef.entry(ty).or_insert_with(|| {
            let kind = if ty == Type::F64 {
                InstKind::ConstFloat(0.0)
            } else {
                InstKind::ConstInt(0) // integers and null pointers alike
            };
            f.insert_at_block_start(
                f.entry_block(),
                InstData {
                    kind,
                    ty: Some(ty),
                    block: f.entry_block(),
                },
            )
        });
    }

    // Rename: DFS over the dominator tree with per-variable value stacks.
    let mut current: HashMap<Value, Vec<Value>> = candidates
        .keys()
        .map(|&var| {
            let ty = candidates[&var];
            (var, vec![undef[&ty]])
        })
        .collect();
    let mut to_delete: Vec<Value> = Vec::new();
    rename(
        f,
        f.entry_block(),
        &children,
        &candidates,
        &phi_for,
        &mut current,
        &mut to_delete,
    );
    for v in to_delete {
        f.remove_inst(v);
    }
    for &var in candidates.keys() {
        f.remove_inst(var);
    }
    candidates.len()
}

/// Finds allocas whose only uses are direct typed loads and stores.
fn promotable_allocas(f: &Function) -> HashMap<Value, Type> {
    let mut ok: HashMap<Value, Type> = HashMap::new();
    let mut bad: HashSet<Value> = HashSet::new();
    let allocas: HashSet<Value> = f
        .live_insts()
        .into_iter()
        .filter(|&v| matches!(f.kind(v), InstKind::Alloca { .. }))
        .collect();
    for v in f.live_insts() {
        match f.kind(v) {
            InstKind::Load { ptr } if allocas.contains(ptr) => {
                let ty = f.ty(v).unwrap_or(Type::I64);
                match ok.get(ptr) {
                    Some(&t) if t != ty => {
                        bad.insert(*ptr);
                    }
                    _ => {
                        ok.insert(*ptr, ty);
                    }
                }
            }
            InstKind::Store { ptr, val } if allocas.contains(ptr) && !allocas.contains(val) => {
                let ty = f.ty(*val).unwrap_or(Type::I64);
                match ok.get(ptr) {
                    Some(&t) if t != ty => {
                        bad.insert(*ptr);
                    }
                    _ => {
                        ok.insert(*ptr, ty);
                    }
                }
                // The *value* operand must not be a tracked alloca (escape).
            }
            kind => {
                // Any other appearance of an alloca as an operand disqualifies
                // it (GEP, call argument, stored value, compare, ...).
                kind.for_each_operand(|op| {
                    if allocas.contains(&op) {
                        bad.insert(op);
                    }
                });
            }
        }
    }
    // Stores whose value operand is an alloca (address escape).
    for v in f.live_insts() {
        if let InstKind::Store { val, .. } = f.kind(v) {
            if allocas.contains(val) {
                bad.insert(*val);
            }
        }
    }
    for b in &bad {
        ok.remove(b);
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn rename(
    f: &mut Function,
    block: Block,
    children: &[Vec<Block>],
    vars: &HashMap<Value, Type>,
    phi_for: &HashMap<(Block, Value), Value>,
    current: &mut HashMap<Value, Vec<Value>>,
    to_delete: &mut Vec<Value>,
) {
    let mut pushes: Vec<Value> = Vec::new();

    // Phis at the head of this block define new current values.
    for (&(b, var), &phi) in phi_for.iter() {
        if b == block {
            current.get_mut(&var).unwrap().push(phi);
            pushes.push(var);
        }
    }

    for v in f.block_insts(block).to_vec() {
        match f.kind(v).clone() {
            InstKind::Load { ptr } if vars.contains_key(&ptr) => {
                let cur = *current[&ptr].last().unwrap();
                f.replace_all_uses(v, cur);
                to_delete.push(v);
            }
            InstKind::Store { ptr, val } if vars.contains_key(&ptr) => {
                current.get_mut(&ptr).unwrap().push(val);
                pushes.push(ptr);
                to_delete.push(v);
            }
            _ => {}
        }
    }

    // Fill successor phis with this block's outgoing values (dedup: a
    // cond_br with identical arms lists its target twice).
    let mut succs = f.succs(block);
    succs.dedup();
    for succ in succs {
        for (&var, _) in vars.iter() {
            if let Some(&phi) = phi_for.get(&(succ, var)) {
                let cur = *current[&var].last().unwrap();
                f.add_phi_incoming(phi, block, cur);
            }
        }
    }

    for &c in &children[block.index()] {
        rename(f, c, children, vars, phi_for, current, to_delete);
    }

    for var in pushes {
        current.get_mut(&var).unwrap().pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature};

    fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        f.live_insts()
            .into_iter()
            .filter(|&v| pred(f.kind(v)))
            .count()
    }

    #[test]
    fn promotes_accumulator_through_a_loop() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let acc = b.alloca(8, 8);
            b.store(acc, zero);
            b.counted_loop(zero, n, 1, |b, i| {
                let cur = b.load(Type::I64, acc);
                let nxt = b.binop(BinOp::Add, cur, i);
                b.store(acc, nxt);
            });
            let out = b.load(Type::I64, acc);
            b.ret(Some(out));
        }
        m.verify().unwrap();
        let promoted = run(&mut m);
        assert_eq!(promoted, 1);
        m.verify().unwrap();
        let f = m.function(id);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Load { .. })), 0);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Store { .. })), 0);
        // The loop-carried accumulator is now a phi (plus the IV phi).
        assert!(count_kind(f, |k| matches!(k, InstKind::Phi(_))) >= 2);
    }

    #[test]
    fn promotes_conditional_stores_with_phi_at_join() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.param(0);
            let slot = b.alloca(8, 8);
            let ten = b.iconst(Type::I64, 10);
            b.store(slot, ten);
            let t = b.create_block();
            let j = b.create_block();
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(CmpOp::Sgt, x, zero);
            b.cond_br(c, t, j);
            b.switch_to_block(t);
            let dbl = b.binop(BinOp::Add, x, x);
            b.store(slot, dbl);
            b.br(j);
            b.switch_to_block(j);
            let out = b.load(Type::I64, slot);
            b.ret(Some(out));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m), 1);
        m.verify().unwrap();
        let f = m.function(id);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Phi(_))), 1);
    }

    #[test]
    fn skips_escaping_and_gep_allocas() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let sink = b.param(0);
            let escapes = b.alloca(8, 8);
            b.store(sink, escapes); // address escapes
            let array = b.alloca(64, 8);
            let two = b.iconst(Type::I64, 2);
            let slot = b.gep(array, two, 8, 0); // indexed access
            let x = b.load(Type::I64, slot);
            let fine = b.alloca(8, 8);
            b.store(fine, x);
            let y = b.load(Type::I64, fine);
            b.ret(Some(y));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m), 1, "only the plain scalar slot promotes");
        m.verify().unwrap();
        let f = m.function(id);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 2);
    }

    #[test]
    fn mixed_type_slots_are_skipped() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let slot = b.alloca(8, 8);
            let fz = b.fconst(1.5);
            b.store(slot, fz); // stored as f64
            let out = b.load(Type::I64, slot); // loaded as i64 (type pun)
            b.ret(Some(out));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m), 0, "type-punned slots must not promote");
    }

    #[test]
    fn read_before_write_gets_deterministic_zero() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let slot = b.alloca(8, 8);
            let out = b.load(Type::I64, slot); // uninitialized read
            b.ret(Some(out));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m), 1);
        m.verify().unwrap();
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Module, Signature};

    #[test]
    fn cond_br_with_identical_targets_does_not_duplicate_phi_labels() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.param(0);
            let slot = b.alloca(8, 8);
            b.store(slot, x);
            let next = b.create_block();
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(tfm_ir::CmpOp::Sgt, x, zero);
            b.cond_br(c, next, next); // both arms identical
            b.switch_to_block(next);
            let out = b.load(Type::I64, slot);
            b.ret(Some(out));
        }
        m.verify().unwrap();
        assert_eq!(run(&mut m), 1);
        m.verify().unwrap();
    }
}
