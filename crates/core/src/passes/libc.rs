//! libc transformation pass.
//!
//! §3.1: "This pass transforms all memory allocation calls (mainly for heap
//! allocation) in libc (e.g., `malloc`, `realloc`, `free`) into
//! TrackFM-managed memory runtime calls. The TrackFM versions leverage
//! AIFM's region-based allocator under the covers to allocate remotable
//! memory."

use std::collections::HashSet;
use tfm_ir::{FuncId, Function, InstKind, Intrinsic, Module, Value};

/// Rewrites libc allocation intrinsics to their TrackFM-managed
/// counterparts across the whole module. Returns the number of call sites
/// rewritten.
pub fn run(module: &mut Module) -> usize {
    run_pruned(module, None).0
}

/// Allocation sites pruned from remoting in `f` (§5 / MaPHeA-style): calls
/// to `malloc`/`calloc` with a compile-time-constant size below
/// `threshold` bytes. Small allocations (counters, headers, tiny tables)
/// cost a guard per access but occupy almost no memory — keeping them
/// permanently local trades a negligible amount of local DRAM for
/// custody-free access.
pub fn local_alloc_sites(f: &Function, threshold: u64) -> HashSet<Value> {
    let mut out = HashSet::new();
    for v in f.live_insts() {
        let InstKind::IntrinsicCall { intr, args } = f.kind(v) else {
            continue;
        };
        let const_size = match intr {
            Intrinsic::Malloc => match f.kind(args[0]) {
                InstKind::ConstInt(c) => Some(*c),
                _ => None,
            },
            Intrinsic::Calloc => match (f.kind(args[0]), f.kind(args[1])) {
                (InstKind::ConstInt(a), InstKind::ConstInt(b)) => a.checked_mul(*b),
                _ => None,
            },
            _ => None,
        };
        if let Some(sz) = const_size {
            if sz >= 0 && (sz as u64) < threshold {
                out.insert(v);
            }
        }
    }
    out
}

/// [`run`], optionally keeping pruned sites on libc `malloc` (always-local).
/// Returns `(rewritten, kept_local)`.
pub fn run_pruned(module: &mut Module, prune_threshold: Option<u64>) -> (usize, usize) {
    let mut rewritten = 0;
    let mut kept = 0;
    for id in module.function_ids().collect::<Vec<FuncId>>() {
        let keep: HashSet<Value> = match prune_threshold {
            Some(t) => local_alloc_sites(module.function(id), t),
            None => HashSet::new(),
        };
        let f = module.function_mut(id);
        for v in f.live_insts() {
            let InstKind::IntrinsicCall { intr, .. } = f.kind(v) else {
                continue;
            };
            if keep.contains(&v) {
                kept += 1;
                continue;
            }
            let replacement = match intr {
                Intrinsic::Malloc => Intrinsic::TfmAlloc,
                Intrinsic::Calloc => Intrinsic::TfmCalloc,
                Intrinsic::Realloc => Intrinsic::TfmRealloc,
                Intrinsic::Free => Intrinsic::TfmFree,
                _ => continue,
            };
            if let InstKind::IntrinsicCall { intr, .. } = &mut f.inst_mut(v).kind {
                *intr = replacement;
                rewritten += 1;
            }
        }
    }
    (rewritten, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature, Type};

    #[test]
    fn rewrites_all_allocation_families() {
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.iconst(Type::I64, 128);
            let one = b.iconst(Type::I64, 1);
            let p = b.intrinsic(Intrinsic::Malloc, vec![n]);
            let q = b.intrinsic(Intrinsic::Calloc, vec![n, one]);
            let r = b.intrinsic(Intrinsic::Realloc, vec![p, n]);
            b.intrinsic(Intrinsic::Free, vec![q]);
            b.intrinsic(Intrinsic::Free, vec![r]);
            b.ret(None);
        }
        assert_eq!(run(&mut m), 5);
        m.verify().unwrap();
        let f = m.function(id);
        for v in f.live_insts() {
            if let InstKind::IntrinsicCall { intr, .. } = f.kind(v) {
                assert!(
                    !matches!(
                        intr,
                        Intrinsic::Malloc
                            | Intrinsic::Calloc
                            | Intrinsic::Realloc
                            | Intrinsic::Free
                    ),
                    "libc call survived: {intr}"
                );
            }
        }
        // Second run: nothing left to rewrite.
        assert_eq!(run(&mut m), 0);
    }

    #[test]
    fn leaves_other_intrinsics_alone() {
        let mut m = Module::new("t");
        let id = m.declare_function("main", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            b.intrinsic(Intrinsic::RuntimeInit, vec![]);
            b.ret(None);
        }
        assert_eq!(run(&mut m), 0);
    }
}
