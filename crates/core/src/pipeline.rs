//! The TrackFM compiler driver.
//!
//! Mirrors Fig. 2 of the paper: runtime initialization → guard check
//! analysis → loop chunking analysis/transform → guard check transform →
//! loop-invariant guard motion → redundant-guard elimination → libc
//! transformation → `tfm-lint` soundness check, optionally preceded by
//! the O1 scalar pipeline (the Fig. 17b ordering fix). The guard-check
//! analysis, guard motion, and elision are all optionally refined by
//! interprocedural [`ModuleSummaries`] (see [`CompilerOptions::interproc`]
//! and [`CompilerOptions::call_aware_kills`]). Produces a
//! [`CompileReport`] with the §4.6 compilation-cost metrics.

use crate::cost::CostModel;
use crate::passes::chunking::{self, ChunkingMode, ChunkingOptions, ChunkingOutcome};
use crate::passes::guard_elim::{self, ElisionOutcome};
use crate::passes::guard_motion::{self, MotionOutcome};
use crate::passes::guards;
use crate::passes::libc;
use crate::passes::lint;
use crate::passes::o1::{self, O1Outcome};
use crate::passes::runtime_init;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tfm_analysis::profile::Profile;
use tfm_analysis::summaries::ModuleSummaries;
use tfm_ir::{FuncId, Module, Value};

/// Compiler options.
#[derive(Copy, Clone, Debug)]
pub struct CompilerOptions {
    /// The cycle cost model (drives the chunking decision and is later
    /// shared with the execution engine).
    pub cost_model: CostModel,
    /// The AIFM object size selected for this application (§3.2: one size
    /// per application, chosen at compile time).
    pub object_size: u64,
    /// Loop-chunking mode.
    pub chunking: ChunkingMode,
    /// Plant prefetch requests on chunk streams.
    pub prefetch: bool,
    /// Run the O1 scalar pipeline before the TrackFM passes (Fig. 17b).
    pub o1: bool,
    /// Prune small constant-size allocations from remoting (§5 /
    /// MaPHeA-style): they stay on libc `malloc`, permanently local and
    /// guard-free. Uses `object_size` as the threshold.
    pub prune_local_allocations: bool,
    /// Insert guards on unchunked heap accesses. Disabled by the §5 hybrid
    /// compiler+kernel exploration, where raw accesses fault into a
    /// kernel-style handler instead (see `tfm_sim::HybridMem`).
    pub guards: bool,
    /// Delete guards the available-guards dataflow proves redundant
    /// (dominated by an un-killed guard on the same pointer) and fold the
    /// read-then-write pattern into a single write guard.
    pub elide_guards: bool,
    /// Run the `tfm-lint` soundness check on the pipeline output and panic
    /// on any may-heap access without live guard custody. Only meaningful
    /// when `guards` is on (the hybrid system leaves raw accesses on
    /// purpose).
    pub lint: bool,
    /// Use interprocedural function summaries to classify parameters and
    /// call results during guard-check analysis: pointers provably stack /
    /// global / pruned-local at every call site need no guard in the
    /// callee, and pointers guarded at every call site are treated as
    /// already-localized. Refinement only ever removes guards.
    pub interproc: bool,
    /// Use call-aware kill sets (custody-transparency summaries) in guard
    /// motion and redundant-guard elimination, so calls to functions that
    /// provably never trigger evacuation don't invalidate live guards.
    pub call_aware_kills: bool,
    /// Hoist guards on loop-invariant pointers into loop preheaders and
    /// fold cross-block read-then-write patterns into one write guard.
    pub guard_motion: bool,
    /// Name of the entry function that receives the runtime-init hook.
    pub main_name: &'static str,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            cost_model: CostModel::default(),
            object_size: 4096,
            chunking: ChunkingMode::CostModel,
            prefetch: true,
            o1: false,
            prune_local_allocations: false,
            guards: true,
            elide_guards: true,
            lint: true,
            interproc: true,
            call_aware_kills: true,
            guard_motion: true,
            main_name: "main",
        }
    }
}

/// What the compiler did, with the §4.6 code-size/compile-time metrics.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Read guards inserted.
    pub read_guards: usize,
    /// Write guards inserted.
    pub write_guards: usize,
    /// Chunking outcome.
    pub chunking: ChunkingOutcome,
    /// O1 outcome (if the pre-pipeline ran).
    pub o1: Option<O1Outcome>,
    /// Allocation sites pruned from remoting (kept always-local).
    pub pruned_local_sites: usize,
    /// What redundant-guard elimination did (`read_guards`/`write_guards`
    /// count insertions *before* elision; subtract `elision.eliminated` for
    /// the surviving total).
    pub elision: ElisionOutcome,
    /// What loop-invariant guard motion did (hoists and cross-block
    /// read→write folds).
    pub motion: MotionOutcome,
    /// Live instructions before compilation.
    pub insts_before: usize,
    /// Live instructions after compilation ("code size").
    pub insts_after: usize,
    /// Wall-clock nanoseconds per pass, in execution order.
    pub pass_nanos: Vec<(&'static str, u128)>,
    /// Every guard/chunk-deref site in the compiled output, for telemetry
    /// attribution (see [`guards::collect_sites`]).
    pub guard_sites: Vec<guards::GuardSite>,
}

impl CompileReport {
    /// Code-size growth factor (§4.6 reports ×2.4 on average for the real
    /// system).
    pub fn code_size_ratio(&self) -> f64 {
        if self.insts_before == 0 {
            1.0
        } else {
            self.insts_after as f64 / self.insts_before as f64
        }
    }

    /// Total guards inserted.
    pub fn total_guards(&self) -> usize {
        self.read_guards + self.write_guards
    }

    /// Total compile time across passes.
    pub fn total_nanos(&self) -> u128 {
        self.pass_nanos.iter().map(|(_, n)| n).sum()
    }
}

/// The TrackFM compiler.
#[derive(Clone, Debug, Default)]
pub struct TrackFmCompiler {
    /// The options this compiler instance applies.
    pub options: CompilerOptions,
}

impl TrackFmCompiler {
    /// Creates a compiler with the given options.
    pub fn new(options: CompilerOptions) -> Self {
        TrackFmCompiler { options }
    }

    /// Transforms `module` in place into a far-memory binary.
    ///
    /// # Panics
    /// Panics if the module fails verification after transformation (a
    /// compiler bug, not a user error).
    pub fn compile(&self, module: &mut Module, profile: Option<&Profile>) -> CompileReport {
        let mut report = CompileReport {
            insts_before: module.total_live_insts(),
            ..Default::default()
        };
        let opts = &self.options;

        if opts.o1 {
            let t = Instant::now();
            report.o1 = Some(o1::run(module));
            report.pass_nanos.push(("o1", t.elapsed().as_nanos()));
        }

        let t = Instant::now();
        runtime_init::run(module, opts.main_name);
        report
            .pass_nanos
            .push(("runtime-init", t.elapsed().as_nanos()));

        let t = Instant::now();
        let chunk_opts = ChunkingOptions {
            mode: opts.chunking,
            object_size: opts.object_size,
            prefetch: opts.prefetch,
        };
        for id in module.function_ids().collect::<Vec<_>>() {
            let out = chunking::run(module, id, &opts.cost_model, &chunk_opts, profile);
            report.chunking.streams += out.streams;
            report.chunking.chunked_accesses += out.chunked_accesses;
            report.chunking.chunked_loops += out.chunked_loops;
            report.chunking.skipped_low_benefit += out.skipped_low_benefit;
        }
        report
            .pass_nanos
            .push(("loop-chunking", t.elapsed().as_nanos()));

        let t = Instant::now();
        let prune_threshold = opts.prune_local_allocations.then_some(opts.object_size);
        let locals: HashMap<FuncId, HashSet<Value>> = module
            .function_ids()
            .map(|id| {
                let sites = match prune_threshold {
                    Some(th) => libc::local_alloc_sites(module.function(id), th),
                    None => Default::default(),
                };
                (id, sites)
            })
            .collect();
        let (mut r, mut w) = (0, 0);
        if opts.guards {
            // Summaries for the guard-check analysis come from the
            // pre-transform IR; the transform only adds guards, so every
            // class/custody fact proven here stays sound afterwards.
            let sums = opts
                .interproc
                .then(|| ModuleSummaries::compute_with_locals(module, &[opts.main_name], &locals));
            for id in module.function_ids().collect::<Vec<_>>() {
                let plan = guards::analyze_with_env(module, id, &locals[&id], sums.as_ref());
                let (pr, pw) = guards::transform(module, id, &plan);
                r += pr;
                w += pw;
            }
        }
        report.read_guards = r;
        report.write_guards = w;
        report
            .pass_nanos
            .push(("guard-transform", t.elapsed().as_nanos()));

        // Call-aware kill sets for motion and elision: recomputed on the
        // post-transform IR so the summaries see the inserted guards.
        let kill_sums =
            (opts.guards && opts.call_aware_kills && (opts.guard_motion || opts.elide_guards))
                .then(|| ModuleSummaries::compute_with_locals(module, &[opts.main_name], &locals));

        if opts.guards && opts.guard_motion {
            let t = Instant::now();
            report.motion = guard_motion::run(module, kill_sums.as_ref());
            report
                .pass_nanos
                .push(("guard-motion", t.elapsed().as_nanos()));
        }

        if opts.guards && opts.elide_guards {
            let t = Instant::now();
            report.elision = guard_elim::run_with(module, kill_sums.as_ref());
            report
                .pass_nanos
                .push(("guard-elide", t.elapsed().as_nanos()));
        }

        let t = Instant::now();
        let (_, kept) = libc::run_pruned(module, prune_threshold);
        report.pruned_local_sites = kept;
        report
            .pass_nanos
            .push(("libc-transform", t.elapsed().as_nanos()));

        report.guard_sites = guards::collect_sites(module);
        report.insts_after = module.total_live_insts();
        module
            .verify()
            .expect("TrackFM output must verify — compiler bug");

        if opts.guards && opts.lint {
            let t = Instant::now();
            let errors = lint::lint_module(module);
            if !errors.is_empty() {
                let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
                panic!(
                    "TrackFM output failed the guard-coverage lint — compiler bug:\n{}",
                    msgs.join("\n")
                );
            }
            report.pass_nanos.push(("tfm-lint", t.elapsed().as_nanos()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, FunctionBuilder, InstKind, Intrinsic, Signature, Type};

    /// Builds the paper's Listing-1 sum loop over a malloc'd array.
    fn sum_program(elems: i64) -> Module {
        let mut m = Module::new("sum");
        let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.malloc_const(elems * 8);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, elems);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(arr, i, 8, 0);
                let x = b.load(Type::I64, addr);
                let _ = b.binop(BinOp::Add, x, x);
            });
            b.intrinsic(Intrinsic::Free, vec![arr]);
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        m
    }

    fn count_intr(m: &Module, intr: Intrinsic) -> usize {
        m.functions()
            .flat_map(|(_, f)| {
                f.live_insts()
                    .into_iter()
                    .filter(|&v| {
                        matches!(f.kind(v), InstKind::IntrinsicCall { intr: i, .. } if *i == intr)
                    })
                    .collect::<Vec<_>>()
            })
            .count()
    }

    #[test]
    fn full_pipeline_produces_far_memory_binary() {
        let mut m = sum_program(1000);
        let report = TrackFmCompiler::default().compile(&mut m, None);
        // The array access is chunked, so no plain guards remain on it.
        assert_eq!(report.chunking.streams, 1);
        assert_eq!(report.read_guards, 0);
        assert_eq!(count_intr(&m, Intrinsic::RuntimeInit), 1);
        assert_eq!(count_intr(&m, Intrinsic::TfmAlloc), 1);
        assert_eq!(count_intr(&m, Intrinsic::TfmFree), 1);
        assert_eq!(count_intr(&m, Intrinsic::Malloc), 0);
        assert!(report.code_size_ratio() > 1.0);
        assert!(report.total_nanos() > 0);
        // runtime-init, loop-chunking, guard-transform, guard-motion,
        // guard-elide, libc-transform, tfm-lint.
        assert_eq!(report.pass_nanos.len(), 7);
    }

    #[test]
    fn elision_folds_duplicate_guards_and_output_stays_sound() {
        // Two loads and a store through the same address in one block: the
        // guard pass inserts three guards, elision folds them into a single
        // write guard (read→write upgrade on the survivor).
        let mut m = Module::new("dup");
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let i = b.iconst(Type::I64, 3);
            let addr = b.gep(p, i, 8, 0);
            let x = b.load(Type::I64, addr);
            let y = b.load(Type::I64, addr);
            let s = b.binop(BinOp::Add, x, y);
            b.store(addr, s);
            b.ret(Some(s));
        }
        m.verify().unwrap();
        let report = TrackFmCompiler::default().compile(&mut m, None);
        assert_eq!(report.read_guards, 2);
        assert_eq!(report.write_guards, 1);
        assert_eq!(report.elision.eliminated, 2);
        assert_eq!(report.elision.upgraded, 1);
        assert_eq!(report.elision.sites.len(), 1);
        assert_eq!(report.elision.sites[0].absorbed, 2);
        assert_eq!(count_intr(&m, Intrinsic::GuardRead), 0);
        assert_eq!(count_intr(&m, Intrinsic::GuardWrite), 1);
        // collect_sites runs post-elision: only the survivor is reported.
        assert_eq!(report.guard_sites.len(), 1);
        assert!(report.guard_sites[0].label.ends_with(":write"));
    }

    #[test]
    fn elision_off_keeps_every_guard() {
        let mut m = sum_program(1000);
        let compiler = TrackFmCompiler::new(CompilerOptions {
            chunking: ChunkingMode::Off,
            elide_guards: false,
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        assert_eq!(report.elision, Default::default());
        assert_eq!(count_intr(&m, Intrinsic::GuardRead), 1);
        // No guard-elide entry in the pass list when disabled.
        assert!(report.pass_nanos.iter().all(|(n, _)| *n != "guard-elide"));
    }

    #[test]
    fn chunking_off_leaves_naive_guards() {
        let mut m = sum_program(1000);
        let compiler = TrackFmCompiler::new(CompilerOptions {
            chunking: ChunkingMode::Off,
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        assert_eq!(report.chunking.streams, 0);
        assert_eq!(report.read_guards, 1);
        assert_eq!(count_intr(&m, Intrinsic::GuardRead), 1);
        assert_eq!(count_intr(&m, Intrinsic::ChunkDeref), 0);
        assert_eq!(report.guard_sites.len(), 1);
        assert!(report.guard_sites[0].label.ends_with(":read"));
    }

    #[test]
    fn o1_runs_first_and_is_reported() {
        let mut m = sum_program(100);
        let compiler = TrackFmCompiler::new(CompilerOptions {
            o1: true,
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        assert!(report.o1.is_some());
        assert_eq!(report.pass_nanos[0].0, "o1");
    }

    /// A const-trip loop that stores through a loop-invariant pointer: the
    /// guard is loop-invariant and should be hoisted into the preheader.
    fn invariant_store_loop() -> Module {
        let mut m = Module::new("inv");
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 64);
            let k = b.iconst(Type::I64, 7);
            let slot = b.gep(p, k, 8, 0);
            b.counted_loop(zero, n, 1, |b, i| {
                // Data-dependent index defeats chunking; the *pointer* is
                // still loop-invariant.
                let x = b.load(Type::I64, slot);
                let y = b.binop(BinOp::Add, x, i);
                b.store(slot, y);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        m
    }

    #[test]
    fn guard_motion_hoists_invariant_guard_out_of_the_loop() {
        let mut m = invariant_store_loop();
        let compiler = TrackFmCompiler::new(CompilerOptions {
            chunking: ChunkingMode::Off,
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        // The read guard and the write guard fold into one write guard,
        // which then climbs into the preheader.
        assert!(report.motion.hoisted >= 1, "motion: {:?}", report.motion);
        assert_eq!(count_intr(&m, Intrinsic::GuardRead), 0);
        assert_eq!(count_intr(&m, Intrinsic::GuardWrite), 1);
    }

    #[test]
    fn guard_motion_off_leaves_guards_in_place() {
        let mut m = invariant_store_loop();
        let compiler = TrackFmCompiler::new(CompilerOptions {
            chunking: ChunkingMode::Off,
            guard_motion: false,
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        assert_eq!(report.motion, Default::default());
        assert!(report.pass_nanos.iter().all(|(n, _)| *n != "guard-motion"));
    }

    #[test]
    fn interproc_skips_guards_on_provably_local_parameters() {
        // helper loads through its pointer parameter; the only call site
        // passes a pruned-local allocation. With interproc on, the callee
        // access needs no guard; off, it gets one.
        let build = || {
            let mut m = Module::new("ip");
            let h = m.declare_function("helper", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(h));
                let p = b.param(0);
                let x = b.load(Type::I64, p);
                b.ret(Some(x));
            }
            let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let loc = b.malloc_const(64);
                let z = b.iconst(Type::I64, 5);
                b.store(loc, z);
                let x = b.call(h, vec![loc], Some(Type::I64));
                b.ret(Some(x));
            }
            m.verify().unwrap();
            m
        };
        let opts = CompilerOptions {
            chunking: ChunkingMode::Off,
            prune_local_allocations: true,
            ..Default::default()
        };
        let mut with = build();
        let r_with = TrackFmCompiler::new(opts).compile(&mut with, None);
        let mut without = build();
        let r_without = TrackFmCompiler::new(CompilerOptions {
            interproc: false,
            ..opts
        })
        .compile(&mut without, None);
        assert!(r_with.total_guards() < r_without.total_guards());
        assert_eq!(count_intr(&with, Intrinsic::GuardRead), 0);
        assert_eq!(count_intr(&without, Intrinsic::GuardRead), 1);
    }

    #[test]
    fn call_aware_kills_let_elision_cross_transparent_calls() {
        // Two loads through the same pointer with a pure call in between:
        // with call-aware kills the second guard is elided; without, the
        // call conservatively kills custody and both survive.
        let build = || {
            let mut m = Module::new("ck");
            let h = m.declare_function("pure", Signature::new(vec![Type::I64], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(h));
                let x = b.param(0);
                let y = b.binop(BinOp::Add, x, x);
                b.ret(Some(y));
            }
            let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let p = b.param(0);
                let x = b.load(Type::I64, p);
                let y = b.call(h, vec![x], Some(Type::I64));
                let z = b.load(Type::I64, p);
                let s = b.binop(BinOp::Add, y, z);
                b.ret(Some(s));
            }
            m.verify().unwrap();
            m
        };
        let opts = CompilerOptions {
            chunking: ChunkingMode::Off,
            ..Default::default()
        };
        let mut with = build();
        let r_with = TrackFmCompiler::new(opts).compile(&mut with, None);
        let mut without = build();
        let r_without = TrackFmCompiler::new(CompilerOptions {
            call_aware_kills: false,
            ..opts
        })
        .compile(&mut without, None);
        assert_eq!(r_with.elision.eliminated, 1);
        assert_eq!(r_without.elision.eliminated, 0);
        assert_eq!(count_intr(&with, Intrinsic::GuardRead), 1);
        assert_eq!(count_intr(&without, Intrinsic::GuardRead), 2);
    }

    #[test]
    fn code_size_growth_is_guard_proportional() {
        // A program with many distinct (unchunkable) accesses grows more
        // than a chunkable one — §4.6's "roughly proportional to the number
        // of memory instructions".
        let mut m = Module::new("scatter");
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let mut acc = b.iconst(Type::I64, 0);
            for k in 0..10 {
                // Data-dependent chained loads: no IV, all guarded.
                let addr = b.gep(p, acc, 8, k);
                let x = b.load(Type::I64, addr);
                acc = b.binop(BinOp::Add, acc, x);
            }
            b.ret(Some(acc));
        }
        m.verify().unwrap();
        let report = TrackFmCompiler::default().compile(&mut m, None);
        assert_eq!(report.read_guards, 10);
        assert!(report.code_size_ratio() > 1.3);
    }
}
