//! # trackfm — compiler-based far memory
//!
//! The primary contribution of "TrackFM: Far-out Compiler Support for a Far
//! Memory World" (ASPLOS '24): an analysis-and-transformation pipeline that
//! turns unmodified programs into far-memory binaries, with no programmer
//! annotations and no OS changes. Where kernel-based systems pay page faults
//! and library-based systems pay programmer effort, TrackFM recovers the
//! needed semantics in the compiler middle-end.
//!
//! The pipeline (Fig. 2 of the paper, implemented in [`passes`]):
//!
//! 1. **runtime initialization** — hook `tfm.runtime.init()` into `main`;
//! 2. **guard check analysis** — find loads/stores that may touch the heap
//!    (allocation-site points-to; stack/global accesses are exempt);
//! 3. **loop chunking analysis + transform** — for strided accesses over
//!    induction variables, trade per-element fast-path guards for
//!    per-object boundary checks, governed by the Eq. 1–3 [`CostModel`]
//!    and (optionally) an execution profile;
//! 4. **guard check transform** — wrap the remaining candidate accesses in
//!    custody-check + state-table guards (Fig. 4);
//! 5. **libc transformation** — reroute `malloc`/`calloc`/`realloc`/`free`
//!    to the TrackFM-managed allocator returning non-canonical pointers.
//!
//! An optional **O1 pre-pipeline** (constant folding, CSE, redundant-load
//! elimination, LICM, DCE) runs first, reproducing the paper's Fig. 17b
//! finding that pre-optimized IR needs far fewer guards.
//!
//! ## Example
//!
//! ```
//! use tfm_ir::{Module, Signature, Type, FunctionBuilder, BinOp};
//! use trackfm::{TrackFmCompiler, CompilerOptions};
//!
//! // The paper's Listing-1 loop, built as unmodified IR.
//! let mut m = Module::new("sum");
//! let f = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
//! {
//!     let mut b = FunctionBuilder::new(m.function_mut(f));
//!     let arr = b.malloc_const(8000);
//!     let zero = b.iconst(Type::I64, 0);
//!     let n = b.iconst(Type::I64, 1000);
//!     b.counted_loop(zero, n, 1, |b, i| {
//!         let addr = b.gep(arr, i, 8, 0);
//!         let x = b.load(Type::I64, addr);
//!         let _ = b.binop(BinOp::Add, x, x);
//!     });
//!     b.ret(Some(zero));
//! }
//!
//! // Recompile for far memory — no source changes.
//! let report = TrackFmCompiler::default().compile(&mut m, None);
//! assert_eq!(report.chunking.streams, 1); // the loop was chunked
//! ```

pub mod cost;
pub mod passes;
pub mod pipeline;

pub use cost::CostModel;
pub use passes::chunking::{ChunkingMode, ChunkingOptions, ChunkingOutcome};
pub use passes::guard_elim::{ElidedSite, ElisionOutcome};
pub use passes::guard_motion::{HoistedSite, MotionOutcome};
pub use passes::guards::GuardSite;
pub use passes::lint::{lint_module, LintError};
pub use passes::o1::O1Outcome;
pub use pipeline::{CompileReport, CompilerOptions, TrackFmCompiler};
