//! The cycle cost model.
//!
//! Two consumers share these constants:
//!
//! 1. the **execution engine** charges them while interpreting transformed
//!    programs (guard fast/slow paths, boundary checks, locality guards);
//! 2. the **loop-chunking analysis** plugs them into the paper's Eq. 1–3 to
//!    decide when chunking pays off.
//!
//! Defaults are calibrated against Tables 1–2 of the paper (cached costs);
//! see DESIGN.md §4 for the calibration table and the one deliberate
//! deviation (`locality_guard`, which sets the Fig. 6 crossover point for
//! *our* substrate).

/// Cycle costs for CPU work and guard paths.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CostModel {
    /// ALU / compare / cast operation.
    pub alu: u64,
    /// Branch (conditional or not).
    pub branch: u64,
    /// Load or store that hits local memory, unguarded.
    pub load_store: u64,
    /// Call/return overhead for direct calls.
    pub call_overhead: u64,
    /// Allocator work per `malloc`/`free` family call.
    pub alloc_cycles: u64,
    /// The custody check for pointers that turn out not to be
    /// TrackFM-managed (Fig. 4a: "roughly four instructions").
    pub custody_check: u64,
    /// Fast-path read guard, object local & metadata cached (Table 1: 21).
    pub guard_fast_read: u64,
    /// Fast-path write guard (Table 1: 21).
    pub guard_fast_write: u64,
    /// Slow-path read guard when the object is already local (Table 1: 144).
    pub guard_slow_read: u64,
    /// Slow-path write guard when the object is already local (Table 1: 159).
    pub guard_slow_write: u64,
    /// Object-boundary check inserted by loop chunking (§3.4: 3
    /// instructions), `c_b` in Eq. 2.
    pub boundary_check: u64,
    /// Locality-invariant guard at object crossings (runtime call that pins
    /// the object and runs a collection point), `c_l` in Eq. 2.
    pub locality_guard: u64,
    /// AIFM smart-pointer dereference (library-based baseline; §4.1 notes
    /// AIFM "does incur overhead for smart pointer indirection" — its hot
    /// path performs the same metadata test as TrackFM's fast-path guard,
    /// minus the custody check, plus DerefScope bookkeeping).
    pub aifm_deref: u64,
    /// AIFM miss-path overhead before the fetch (no custody check, no
    /// kernel).
    pub aifm_slow: u64,
    /// One-time runtime initialization (`tfm.runtime.init`).
    pub runtime_init_cycles: u64,
    /// Bulk copy throughput for `memcpy`/`memset` (bytes per cycle).
    pub memcpy_bytes_per_cycle: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            branch: 1,
            load_store: 6,
            call_overhead: 8,
            alloc_cycles: 60,
            custody_check: 4,
            guard_fast_read: 21,
            guard_fast_write: 21,
            guard_slow_read: 144,
            guard_slow_write: 159,
            boundary_check: 3,
            locality_guard: 1500,
            aifm_deref: 16,
            aifm_slow: 130,
            runtime_init_cycles: 2_000,
            memcpy_bytes_per_cycle: 8,
        }
    }
}

impl CostModel {
    /// `c_f` (average of read/write fast guards).
    pub fn c_f(&self) -> f64 {
        (self.guard_fast_read + self.guard_fast_write) as f64 / 2.0
    }

    /// `c_s` (average of read/write slow guards, object local).
    pub fn c_s(&self) -> f64 {
        (self.guard_slow_read + self.guard_slow_write) as f64 / 2.0
    }

    /// `c_b`.
    pub fn c_b(&self) -> f64 {
        self.boundary_check as f64
    }

    /// `c_l`.
    pub fn c_l(&self) -> f64 {
        self.locality_guard as f64
    }

    /// Eq. 1: guard cost of a loop iterating over one object of density `d`
    /// with the naive transformation: `(d−1)·c_f + c_s`.
    pub fn naive_loop_cost(&self, d: f64) -> f64 {
        (d - 1.0) * self.c_f() + self.c_s()
    }

    /// Eq. 2: guard cost per object after chunking: `(d−1)·c_b + c_l`.
    pub fn chunked_loop_cost(&self, d: f64) -> f64 {
        (d - 1.0) * self.c_b() + self.c_l()
    }

    /// Eq. 3 rearranged: the minimum object density for chunking to win.
    /// The paper states `d > (c_s − c_l)/(c_b − c_f)`; solving Eq. 1 = Eq. 2
    /// exactly gives `d* = 1 + (c_l − c_s)/(c_f − c_b)` (the paper drops the
    /// `+1`, which is negligible at its ~730-element crossover).
    pub fn density_threshold(&self) -> f64 {
        1.0 + (self.c_l() - self.c_s()) / (self.c_f() - self.c_b())
    }

    /// The chunking decision. `density` is `d = o/e`; `avg_trips`, when a
    /// profile is available, is the loop's average iterations per entry.
    ///
    /// * Static (no profile): the paper's Eq. 3 — chunk iff `d > d*`.
    /// * Profile-guided: integrate the guard trade over an observed entry:
    ///   `trips` iterations save `c_f − c_b` each, but every entry pays at
    ///   least one locality guard and crosses `max(1, trips/d)` boundaries.
    ///   This is the filter that rescues k-means (Fig. 8) and the analytics
    ///   aggregations (Fig. 15), whose nested loops iterate only a handful
    ///   of times.
    pub fn should_chunk(&self, density: f64, avg_trips: Option<f64>) -> bool {
        if density <= 1.0 {
            return false;
        }
        match avg_trips {
            None => density > self.density_threshold(),
            Some(trips) => {
                let crossings = (trips / density).max(1.0);
                trips * (self.c_f() - self.c_b()) > crossings * (self.c_l() - self.c_s())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let c = CostModel::default();
        assert_eq!(c.guard_fast_read, 21);
        assert_eq!(c.guard_slow_read, 144);
        assert_eq!(c.guard_slow_write, 159);
        assert_eq!(c.boundary_check, 3);
        assert_eq!(c.custody_check, 4);
    }

    #[test]
    fn threshold_is_crossover_of_eq1_eq2() {
        let c = CostModel::default();
        let d = c.density_threshold();
        // At the threshold the two cost curves intersect.
        let naive = c.naive_loop_cost(d);
        let chunked = c.chunked_loop_cost(d);
        assert!((naive - chunked).abs() < 1e-6, "{naive} vs {chunked}");
        // Just above: chunking wins; just below: it loses.
        assert!(c.chunked_loop_cost(d * 1.1) < c.naive_loop_cost(d * 1.1));
        assert!(c.chunked_loop_cost(d * 0.9) > c.naive_loop_cost(d * 0.9));
    }

    #[test]
    fn static_decision_follows_eq3() {
        let c = CostModel::default();
        let d = c.density_threshold();
        assert!(c.should_chunk(d + 1.0, None));
        assert!(!c.should_chunk(d - 1.0, None));
        assert!(!c.should_chunk(0.5, None));
    }

    #[test]
    fn profile_rejects_short_loops_despite_density() {
        let c = CostModel::default();
        // Dense object (512 elements) but the loop only runs 8 iterations
        // per entry (k-means inner loop): one locality guard per entry can
        // never amortize.
        assert!(c.should_chunk(512.0, None), "static model would chunk");
        assert!(
            !c.should_chunk(512.0, Some(8.0)),
            "profile-guided model must reject"
        );
        // Long-running dense loop: chunk.
        assert!(c.should_chunk(512.0, Some(100_000.0)));
    }

    #[test]
    fn profile_accepts_exactly_when_amortized() {
        let c = CostModel::default();
        let breakeven = (c.c_l() - c.c_s()) / (c.c_f() - c.c_b());
        // Just above break-even trips (single crossing regime).
        assert!(c.should_chunk(1_000_000.0, Some(breakeven * 1.1)));
        assert!(!c.should_chunk(1_000_000.0, Some(breakeven * 0.9)));
    }
}
