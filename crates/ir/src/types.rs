//! The scalar type system.
//!
//! TrackFM only needs enough typing to know access widths (for guard
//! granularity and object-density computation) and integer/float semantics, so
//! the type lattice is flat: fixed-width integers, one float type, and an
//! opaque pointer type — the same simplification LLVM made with opaque
//! pointers.

use std::fmt;

/// A first-class scalar type.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Opaque pointer (64-bit).
    Ptr,
}

impl Type {
    /// Size of a value of this type in bytes.
    ///
    /// ```
    /// # use tfm_ir::Type;
    /// assert_eq!(Type::I32.size(), 4);
    /// assert_eq!(Type::Ptr.size(), 8);
    /// ```
    #[inline]
    pub fn size(self) -> u32 {
        match self {
            Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Natural alignment in bytes (equal to size for all scalar types).
    #[inline]
    pub fn align(self) -> u32 {
        self.size()
    }

    /// True for the integer types (`i8`/`i16`/`i32`/`i64`).
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// True for `f64`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64)
    }

    /// True for `ptr`.
    #[inline]
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Number of value bits (used to truncate integer results).
    #[inline]
    pub fn bits(self) -> u32 {
        self.size() * 8
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        for (ty, sz) in [
            (Type::I8, 1),
            (Type::I16, 2),
            (Type::I32, 4),
            (Type::I64, 8),
            (Type::F64, 8),
            (Type::Ptr, 8),
        ] {
            assert_eq!(ty.size(), sz);
            assert_eq!(ty.align(), sz);
            assert_eq!(ty.bits(), sz * 8);
        }
    }

    #[test]
    fn classification() {
        assert!(Type::I8.is_int());
        assert!(Type::I64.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::Ptr.is_int());
    }

    #[test]
    fn display_names() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::Ptr.to_string(), "ptr");
    }
}
