//! Textual IR printing (`Display` impls).
//!
//! The format is LLVM-flavored and intended for debugging and golden tests:
//!
//! ```text
//! func @sum(i64 %0, ptr %1) -> i64 {
//! bb0:
//!   %2 = iconst.i64 0
//!   br bb1
//! ...
//! }
//! ```

use crate::function::Function;
use crate::inst::InstKind;
use crate::module::Module;
use std::fmt;

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module {}", self.name)?;
        for (id, g) in self.globals() {
            write!(f, "global {id} \"{}\" [{} bytes]", g.name, g.size)?;
            if let Some(init) = &g.init {
                write!(f, " init =")?;
                for b in init {
                    write!(f, " {b:02x}")?;
                }
            }
            writeln!(f)?;
        }
        for (_, func) in self.functions() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func @{}(", self.name)?;
        for (i, ty) in self.sig.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ty} %{i}")?;
        }
        write!(f, ")")?;
        if let Some(r) = self.sig.ret {
            write!(f, " -> {r}")?;
        }
        writeln!(f, " {{")?;
        for b in self.blocks() {
            if self.block_insts(b).is_empty() && b != self.entry_block() {
                continue;
            }
            writeln!(f, "{b}:")?;
            for &v in self.block_insts(b) {
                write!(f, "  ")?;
                write_inst(f, self, v)?;
                writeln!(f)?;
            }
        }
        writeln!(f, "}}")
    }
}

fn write_inst(f: &mut fmt::Formatter<'_>, func: &Function, v: crate::Value) -> fmt::Result {
    let data = func.inst(v);
    if data.ty.is_some() {
        write!(f, "{v} = ")?;
    }
    let tystr = data.ty.map(|t| t.to_string()).unwrap_or_default();
    match &data.kind {
        InstKind::Nop => write!(f, "nop"),
        InstKind::Param(n) => write!(f, "param.{tystr} {n}"),
        InstKind::ConstInt(c) => write!(f, "iconst.{tystr} {c}"),
        InstKind::ConstFloat(c) => write!(f, "fconst {c}"),
        InstKind::Binary(op, a, b) => write!(f, "{}.{tystr} {a}, {b}", op.mnemonic()),
        InstKind::Icmp(op, a, b) => write!(f, "icmp.{} {a}, {b}", op.mnemonic()),
        InstKind::Fcmp(op, a, b) => write!(f, "fcmp.{} {a}, {b}", op.mnemonic()),
        InstKind::Cast(op, a) => write!(f, "{}.{tystr} {a}", op.mnemonic()),
        InstKind::Alloca { size, align } => write!(f, "alloca {size}, align {align}"),
        InstKind::Load { ptr } => write!(f, "load.{tystr} {ptr}"),
        InstKind::Store { ptr, val } => write!(f, "store {val}, {ptr}"),
        InstKind::Gep {
            base,
            index,
            scale,
            disp,
        } => write!(f, "gep {base}, {index} x {scale} + {disp}"),
        InstKind::Call { func: callee, args } => {
            write!(f, "call {callee}(")?;
            write_args(f, args)?;
            write!(f, ")")
        }
        InstKind::IntrinsicCall { intr, args } => {
            write!(f, "call {intr}(")?;
            write_args(f, args)?;
            write!(f, ")")
        }
        InstKind::GlobalAddr(g) => write!(f, "global_addr {g}"),
        InstKind::Phi(incs) => {
            write!(f, "phi.{tystr} ")?;
            for (i, (b, val)) in incs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "[{b}: {val}]")?;
            }
            Ok(())
        }
        InstKind::Select { cond, tval, fval } => write!(f, "select.{tystr} {cond}, {tval}, {fval}"),
        InstKind::Br(b) => write!(f, "br {b}"),
        InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        } => write!(f, "cond_br {cond}, {then_bb}, {else_bb}"),
        InstKind::Ret(Some(v)) => write!(f, "ret {v}"),
        InstKind::Ret(None) => write!(f, "ret"),
        InstKind::Unreachable => write!(f, "unreachable"),
    }
}

fn write_args(f: &mut fmt::Formatter<'_>, args: &[crate::Value]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{BinOp, CmpOp, FunctionBuilder, Intrinsic, Module, Signature, Type};

    #[test]
    fn prints_function_with_loop() {
        let mut m = Module::new("p");
        let id = m.declare_function(
            "sum",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let n = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(arr, i, 8, 0);
                let x = b.load(Type::I64, addr);
                let _ = b.binop(BinOp::Add, x, x);
            });
            b.ret(Some(zero));
        }
        let text = m.to_string();
        assert!(text.contains("func @sum(ptr %0, i64 %1) -> i64"), "{text}");
        assert!(text.contains("phi.i64"), "{text}");
        assert!(text.contains("gep"), "{text}");
        assert!(text.contains("cond_br"), "{text}");
        let _ = CmpOp::Slt; // silence unused import lint paths in some cfgs
    }

    #[test]
    fn prints_intrinsics_and_globals() {
        let mut m = Module::new("p");
        m.add_global("lut", 32, None);
        let id = m.declare_function("main", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            b.intrinsic(Intrinsic::RuntimeInit, vec![]);
            let p = b.malloc_const(64);
            b.intrinsic(Intrinsic::Free, vec![p]);
            b.ret(None);
        }
        let text = m.to_string();
        assert!(text.contains("tfm.runtime.init"), "{text}");
        assert!(text.contains("call malloc"), "{text}");
        assert!(text.contains("global @g0 \"lut\" [32 bytes]"), "{text}");
    }
}
