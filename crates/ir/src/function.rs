//! Functions: SSA instruction arenas organized into basic blocks.

use crate::entities::{Block, Value};
use crate::inst::InstKind;
use crate::types::Type;

/// A function signature: parameter types and an optional return type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type, or `None` for `void`.
    pub ret: Option<Type>,
}

impl Signature {
    /// Creates a signature.
    pub fn new(params: Vec<Type>, ret: Option<Type>) -> Self {
        Signature { params, ret }
    }
}

/// An instruction plus its result type.
#[derive(Clone, PartialEq, Debug)]
pub struct InstData {
    /// The operation.
    pub kind: InstKind,
    /// Result type (`None` for instructions with no SSA result).
    pub ty: Option<Type>,
    /// The block currently containing this instruction. Meaningless for
    /// [`InstKind::Nop`] tombstones.
    pub block: Block,
}

/// A basic block: an ordered list of instruction ids ending in a terminator.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BlockData {
    /// Ordered instructions; the last one must be a terminator once the
    /// function is complete.
    pub insts: Vec<Value>,
}

/// A function in SSA form.
///
/// Instructions live in a stable arena; [`Value`] ids never move, which lets
/// passes hold references across mutations. Deleting an instruction leaves a
/// [`InstKind::Nop`] tombstone in the arena and removes it from its block's
/// order. Function parameters are materialized as [`InstKind::Param`]
/// instructions at the head of the entry block, so all SSA values are
/// instruction ids.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbolic name (unique within a module).
    pub name: String,
    /// The signature.
    pub sig: Signature,
    insts: Vec<InstData>,
    blocks: Vec<BlockData>,
    entry: Block,
}

impl Function {
    /// Creates an empty function with an entry block containing the
    /// parameter pseudo-instructions.
    pub fn new(name: impl Into<String>, sig: Signature) -> Self {
        let mut f = Function {
            name: name.into(),
            sig: sig.clone(),
            insts: Vec::new(),
            blocks: vec![BlockData::default()],
            entry: Block(0),
        };
        for (i, ty) in sig.params.iter().enumerate() {
            let v = f.push_inst(
                Block(0),
                InstData {
                    kind: InstKind::Param(i as u16),
                    ty: Some(*ty),
                    block: Block(0),
                },
            );
            debug_assert_eq!(v.index(), i);
        }
        f
    }

    /// The entry block.
    #[inline]
    pub fn entry_block(&self) -> Block {
        self.entry
    }

    /// The `n`-th parameter's SSA value.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    #[inline]
    pub fn param(&self, n: usize) -> Value {
        assert!(n < self.sig.params.len(), "parameter index out of range");
        Value::from_index(n)
    }

    /// Number of instruction slots in the arena (including tombstones).
    #[inline]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of live (non-tombstone) instructions.
    pub fn num_live_insts(&self) -> usize {
        self.insts
            .iter()
            .filter(|d| !matches!(d.kind, InstKind::Nop))
            .count()
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterator over all block ids.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        (0..self.blocks.len()).map(Block::from_index)
    }

    /// Creates a new, empty block.
    pub fn create_block(&mut self) -> Block {
        let b = Block::from_index(self.blocks.len());
        self.blocks.push(BlockData::default());
        b
    }

    /// Instruction data for a value.
    #[inline]
    pub fn inst(&self, v: Value) -> &InstData {
        &self.insts[v.index()]
    }

    /// Mutable instruction data for a value.
    #[inline]
    pub fn inst_mut(&mut self, v: Value) -> &mut InstData {
        &mut self.insts[v.index()]
    }

    /// Instruction kind for a value.
    #[inline]
    pub fn kind(&self, v: Value) -> &InstKind {
        &self.insts[v.index()].kind
    }

    /// Result type of a value.
    #[inline]
    pub fn ty(&self, v: Value) -> Option<Type> {
        self.insts[v.index()].ty
    }

    /// The ordered instruction list of a block.
    #[inline]
    pub fn block_insts(&self, b: Block) -> &[Value] {
        &self.blocks[b.index()].insts
    }

    /// The block's terminator, if the block is non-empty and terminated.
    pub fn terminator(&self, b: Block) -> Option<Value> {
        self.blocks[b.index()]
            .insts
            .last()
            .copied()
            .filter(|v| self.kind(*v).is_terminator())
    }

    /// Appends an instruction to the end of `block`, returning its value id.
    pub fn push_inst(&mut self, block: Block, mut data: InstData) -> Value {
        data.block = block;
        let v = Value::from_index(self.insts.len());
        self.insts.push(data);
        self.blocks[block.index()].insts.push(v);
        v
    }

    /// Inserts a new instruction immediately before `before` in its block.
    ///
    /// # Panics
    /// Panics if `before` is not present in its recorded block.
    pub fn insert_before(&mut self, before: Value, mut data: InstData) -> Value {
        let block = self.insts[before.index()].block;
        data.block = block;
        let v = Value::from_index(self.insts.len());
        self.insts.push(data);
        let list = &mut self.blocks[block.index()].insts;
        let pos = list
            .iter()
            .position(|&x| x == before)
            .expect("anchor instruction not in its block");
        list.insert(pos, v);
        v
    }

    /// Inserts a new instruction immediately after `after` in its block.
    ///
    /// # Panics
    /// Panics if `after` is not present in its recorded block.
    pub fn insert_after(&mut self, after: Value, mut data: InstData) -> Value {
        let block = self.insts[after.index()].block;
        data.block = block;
        let v = Value::from_index(self.insts.len());
        self.insts.push(data);
        let list = &mut self.blocks[block.index()].insts;
        let pos = list
            .iter()
            .position(|&x| x == after)
            .expect("anchor instruction not in its block");
        list.insert(pos + 1, v);
        v
    }

    /// Inserts a new instruction at the front of a block, after any leading
    /// phis (and after parameters in the entry block).
    pub fn insert_at_block_start(&mut self, block: Block, mut data: InstData) -> Value {
        data.block = block;
        let v = Value::from_index(self.insts.len());
        self.insts.push(data);
        let pos = self.blocks[block.index()]
            .insts
            .iter()
            .position(|&x| {
                !matches!(
                    self.insts[x.index()].kind,
                    InstKind::Phi(_) | InstKind::Param(_)
                )
            })
            .unwrap_or(self.blocks[block.index()].insts.len());
        self.blocks[block.index()].insts.insert(pos, v);
        v
    }

    /// Moves an existing instruction to sit immediately before `anchor`
    /// (possibly in a different block). Used by code motion (LICM).
    ///
    /// # Panics
    /// Panics if either instruction is not present in its recorded block.
    pub fn move_inst_before(&mut self, v: Value, anchor: Value) {
        let old_block = self.insts[v.index()].block;
        let list = &mut self.blocks[old_block.index()].insts;
        let pos = list
            .iter()
            .position(|&x| x == v)
            .expect("moved instruction not in its block");
        list.remove(pos);
        let new_block = self.insts[anchor.index()].block;
        let list = &mut self.blocks[new_block.index()].insts;
        let pos = list
            .iter()
            .position(|&x| x == anchor)
            .expect("anchor instruction not in its block");
        list.insert(pos, v);
        self.insts[v.index()].block = new_block;
    }

    /// Removes an instruction from its block, leaving a tombstone in the
    /// arena. Uses of the value are NOT rewritten; callers must have replaced
    /// them first (or know the value is unused).
    pub fn remove_inst(&mut self, v: Value) {
        let block = self.insts[v.index()].block;
        let list = &mut self.blocks[block.index()].insts;
        if let Some(pos) = list.iter().position(|&x| x == v) {
            list.remove(pos);
        }
        self.insts[v.index()].kind = InstKind::Nop;
        self.insts[v.index()].ty = None;
    }

    /// Replaces every use of `old` with `new` across the whole function.
    pub fn replace_all_uses(&mut self, old: Value, new: Value) {
        for data in &mut self.insts {
            data.kind.for_each_operand_mut(|op| {
                if *op == old {
                    *op = new;
                }
            });
        }
    }

    /// Predecessor blocks of `b` (derived from terminators; O(blocks)).
    pub fn preds(&self, b: Block) -> Vec<Block> {
        let mut out = Vec::new();
        for p in self.blocks() {
            if let Some(t) = self.terminator(p) {
                if self.kind(t).successors().contains(&b) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: Block) -> Vec<Block> {
        self.terminator(b)
            .map(|t| self.kind(t).successors())
            .unwrap_or_default()
    }

    /// Adds an incoming edge to a phi instruction.
    ///
    /// # Panics
    /// Panics if `phi` is not a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: Value, pred: Block, val: Value) {
        match &mut self.insts[phi.index()].kind {
            InstKind::Phi(incs) => incs.push((pred, val)),
            _ => panic!("{phi} is not a phi"),
        }
    }

    /// Rewrites phi predecessor labels in `b` from `old_pred` to `new_pred`
    /// (used when splitting edges / inserting preheaders).
    pub fn redirect_phi_pred(&mut self, b: Block, old_pred: Block, new_pred: Block) {
        for &v in self.blocks[b.index()].insts.clone().iter() {
            if let InstKind::Phi(incs) = &mut self.insts[v.index()].kind {
                for (p, _) in incs.iter_mut() {
                    if *p == old_pred {
                        *p = new_pred;
                    }
                }
            }
        }
    }

    /// Merges straight-line block `b` into `a`.
    ///
    /// The caller must guarantee: `a` ends in `br b`, `a` is `b`'s only
    /// predecessor, and `b` carries no phis. `a`'s branch is deleted, `b`'s
    /// instructions are appended to `a`, and phi labels in `b`'s successors
    /// are rewritten from `b` to `a`. `b` is left empty (unreachable).
    ///
    /// # Panics
    /// Panics if `a` does not end in `br b`.
    pub fn merge_straightline(&mut self, a: Block, b: Block) {
        let term = self.terminator(a).expect("a must be terminated");
        assert!(
            matches!(self.kind(term), InstKind::Br(t) if *t == b),
            "{a} must end in `br {b}`"
        );
        self.remove_inst(term);
        let moved = std::mem::take(&mut self.blocks[b.index()].insts);
        for &v in &moved {
            self.insts[v.index()].block = a;
        }
        self.blocks[a.index()].insts.extend_from_slice(&moved);
        for s in self.succs(a) {
            self.redirect_phi_pred(s, b, a);
        }
    }

    /// All live instruction values in block order (entry first, then the
    /// remaining blocks in id order).
    pub fn live_insts(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.insts.len());
        for b in self.blocks() {
            out.extend_from_slice(self.block_insts(b));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn inst(kind: InstKind, ty: Option<Type>) -> InstData {
        InstData {
            kind,
            ty,
            block: Block(0),
        }
    }

    fn simple_fn() -> Function {
        Function::new(
            "f",
            Signature::new(vec![Type::I64, Type::I64], Some(Type::I64)),
        )
    }

    #[test]
    fn params_are_entry_instructions() {
        let f = simple_fn();
        assert_eq!(f.param(0), Value(0));
        assert_eq!(f.param(1), Value(1));
        assert_eq!(f.block_insts(f.entry_block()), &[Value(0), Value(1)]);
        assert_eq!(f.ty(f.param(0)), Some(Type::I64));
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let f = simple_fn();
        let _ = f.param(2);
    }

    #[test]
    fn push_and_terminate() {
        let mut f = simple_fn();
        let e = f.entry_block();
        let a = f.param(0);
        let b = f.param(1);
        let sum = f.push_inst(e, inst(InstKind::Binary(BinOp::Add, a, b), Some(Type::I64)));
        let r = f.push_inst(e, inst(InstKind::Ret(Some(sum)), None));
        assert_eq!(f.terminator(e), Some(r));
        assert_eq!(f.num_live_insts(), 4);
    }

    #[test]
    fn insert_before_and_after_preserve_order() {
        let mut f = simple_fn();
        let e = f.entry_block();
        let a = f.param(0);
        let add = f.push_inst(e, inst(InstKind::Binary(BinOp::Add, a, a), Some(Type::I64)));
        let pre = f.insert_before(add, inst(InstKind::ConstInt(1), Some(Type::I64)));
        let post = f.insert_after(add, inst(InstKind::ConstInt(2), Some(Type::I64)));
        let order = f.block_insts(e);
        let pi = order.iter().position(|&v| v == pre).unwrap();
        let ai = order.iter().position(|&v| v == add).unwrap();
        let qi = order.iter().position(|&v| v == post).unwrap();
        assert!(pi < ai && ai < qi);
    }

    #[test]
    fn move_inst_before_crosses_blocks() {
        let mut f = Function::new("m", Signature::new(vec![], None));
        let e = f.entry_block();
        let b2 = f.create_block();
        let c = f.push_inst(e, inst(InstKind::ConstInt(5), Some(Type::I64)));
        f.push_inst(e, inst(InstKind::Br(b2), None));
        let r = f.push_inst(b2, inst(InstKind::Ret(None), None));
        f.move_inst_before(c, r);
        assert!(!f.block_insts(e).contains(&c));
        assert_eq!(f.block_insts(b2), &[c, r]);
        assert_eq!(f.inst(c).block, b2);
    }

    #[test]
    fn remove_leaves_tombstone() {
        let mut f = simple_fn();
        let e = f.entry_block();
        let c = f.push_inst(e, inst(InstKind::ConstInt(7), Some(Type::I64)));
        assert_eq!(f.num_live_insts(), 3);
        f.remove_inst(c);
        assert_eq!(f.num_live_insts(), 2);
        assert!(matches!(f.kind(c), InstKind::Nop));
        assert!(!f.block_insts(e).contains(&c));
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = simple_fn();
        let e = f.entry_block();
        let a = f.param(0);
        let b = f.param(1);
        let add = f.push_inst(e, inst(InstKind::Binary(BinOp::Add, a, a), Some(Type::I64)));
        f.replace_all_uses(a, b);
        assert_eq!(*f.kind(add), InstKind::Binary(BinOp::Add, b, b));
    }

    #[test]
    fn preds_and_succs() {
        let mut f = Function::new("g", Signature::new(vec![], None));
        let e = f.entry_block();
        let b1 = f.create_block();
        let b2 = f.create_block();
        let cond = f.push_inst(e, inst(InstKind::ConstInt(1), Some(Type::I64)));
        f.push_inst(
            e,
            inst(
                InstKind::CondBr {
                    cond,
                    then_bb: b1,
                    else_bb: b2,
                },
                None,
            ),
        );
        f.push_inst(b1, inst(InstKind::Br(b2), None));
        f.push_inst(b2, inst(InstKind::Ret(None), None));
        assert_eq!(f.succs(e), vec![b1, b2]);
        let mut p = f.preds(b2);
        p.sort();
        assert_eq!(p, vec![e, b1]);
    }

    #[test]
    fn phi_incoming_and_redirect() {
        let mut f = Function::new("h", Signature::new(vec![], None));
        let e = f.entry_block();
        let hdr = f.create_block();
        let c = f.push_inst(e, inst(InstKind::ConstInt(0), Some(Type::I64)));
        f.push_inst(e, inst(InstKind::Br(hdr), None));
        let phi = f.push_inst(hdr, inst(InstKind::Phi(vec![(e, c)]), Some(Type::I64)));
        f.add_phi_incoming(phi, hdr, phi);
        let pre = f.create_block();
        f.redirect_phi_pred(hdr, e, pre);
        match f.kind(phi) {
            InstKind::Phi(incs) => {
                assert_eq!(incs[0].0, pre);
                assert_eq!(incs[1].0, hdr);
            }
            _ => unreachable!(),
        }
    }
}
