//! Entity references: stable, copyable ids for IR objects.

use std::fmt;

macro_rules! entity {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the entity's arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an entity reference from an arena index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("entity index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

entity! {
    /// An SSA value: the result of an instruction (parameters are
    /// materialized as [`crate::InstKind::Param`] instructions in the entry
    /// block, so every value is an instruction id).
    Value, "%"
}

entity! {
    /// A basic block within a [`crate::Function`].
    Block, "bb"
}

entity! {
    /// A function within a [`crate::Module`].
    FuncId, "@f"
}

entity! {
    /// A global data object within a [`crate::Module`].
    GlobalId, "@g"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_roundtrip() {
        let v = Value::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "%42");
        let b = Block::from_index(3);
        assert_eq!(b.to_string(), "bb3");
        let f = FuncId::from_index(0);
        assert_eq!(f.to_string(), "@f0");
        let g = GlobalId::from_index(7);
        assert_eq!(g.to_string(), "@g7");
    }

    #[test]
    fn entity_ordering_follows_index() {
        assert!(Value(1) < Value(2));
        assert_eq!(Value(5), Value(5));
    }
}
