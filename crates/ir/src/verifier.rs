//! The IR verifier: structural SSA well-formedness checks.
//!
//! Checks performed per function:
//! * every reachable block is non-empty and ends in exactly one terminator,
//!   with no terminators mid-block;
//! * phis appear only at the head of a block (after entry parameters) and
//!   their incoming labels exactly match the block's CFG predecessors;
//! * no operand refers to a tombstone;
//! * every non-phi use is dominated by its definition (iterative dominance);
//! * operand/result types are consistent (binops homogeneous, loads/stores
//!   through `ptr`, calls match callee signatures, intrinsic signatures).

use crate::entities::{Block, Value};
use crate::function::Function;
use crate::inst::InstKind;
use crate::module::Module;
use crate::types::Type;
use std::collections::HashSet;
use std::fmt;

/// A verification failure, located as precisely as the check allows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the error occurred.
    pub function: String,
    /// Block index of the offending block, when the check is localized.
    pub block: Option<usize>,
    /// Value index of the offending instruction, when the check names one.
    pub inst: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed in `{}`", self.function)?;
        if let Some(b) = self.block {
            write!(f, " at bb{b}")?;
            if let Some(v) = self.inst {
                write!(f, " %{v}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(func: &Function, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        function: func.name.clone(),
        block: None,
        inst: None,
        message: msg.into(),
    }
}

/// An error located to a block (e.g. a malformed block structure).
fn err_in(func: &Function, b: Block, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        block: Some(b.index()),
        ..err(func, msg)
    }
}

/// An error located to one instruction inside a block.
fn err_at(func: &Function, b: Block, v: Value, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        block: Some(b.index()),
        inst: Some(v.index()),
        ..err(func, msg)
    }
}

/// Verifies every function in a module.
///
/// # Errors
/// Returns the first error found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (_, f) in m.functions() {
        verify_function(f, Some(m))?;
    }
    Ok(())
}

/// Verifies a single function. Pass the module for call-signature checking;
/// with `None`, calls are only arity-unchecked.
///
/// # Errors
/// Returns the first error found.
pub fn verify_function(f: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let reachable = reachable_blocks(f);

    // Block structure.
    for &b in &reachable {
        let insts = f.block_insts(b);
        if insts.is_empty() {
            return Err(err_in(f, b, format!("{b} is reachable but empty")));
        }
        let last = *insts.last().unwrap();
        if !f.kind(last).is_terminator() {
            return Err(err_in(f, b, format!("{b} does not end in a terminator")));
        }
        let mut seen_nonphi = false;
        for (i, &v) in insts.iter().enumerate() {
            let kind = f.kind(v);
            if kind.is_terminator() && i + 1 != insts.len() {
                return Err(err_at(
                    f,
                    b,
                    v,
                    format!("terminator {v} is not last in {b}"),
                ));
            }
            match kind {
                InstKind::Nop => {
                    return Err(err_at(
                        f,
                        b,
                        v,
                        format!("tombstone {v} still listed in {b}"),
                    ));
                }
                InstKind::Phi(_) => {
                    if seen_nonphi {
                        return Err(err_at(f, b, v, format!("phi {v} after non-phi in {b}")));
                    }
                }
                InstKind::Param(_) => {
                    if b != f.entry_block() {
                        return Err(err_at(f, b, v, format!("param {v} outside entry block")));
                    }
                }
                _ => seen_nonphi = true,
            }
            if f.inst(v).block != b {
                return Err(err_at(f, b, v, format!("{v} block backlink is stale")));
            }
        }
    }

    // Branch targets and phi predecessor labels.
    for &b in &reachable {
        for s in f.succs(b) {
            if s.index() >= f.num_blocks() {
                return Err(err_in(f, b, format!("{b} branches to nonexistent {s}")));
            }
        }
    }
    for &b in &reachable {
        let preds: HashSet<Block> = f
            .preds(b)
            .into_iter()
            .filter(|p| reachable.contains(p))
            .collect();
        for &v in f.block_insts(b) {
            if let InstKind::Phi(incs) = f.kind(v) {
                let labels: HashSet<Block> = incs.iter().map(|(p, _)| *p).collect();
                if labels.len() != incs.len() {
                    return Err(err_at(
                        f,
                        b,
                        v,
                        format!("phi {v} has duplicate predecessor labels"),
                    ));
                }
                if labels != preds {
                    return Err(err_at(
                        f,
                        b,
                        v,
                        format!(
                            "phi {v} labels {labels:?} do not match predecessors {preds:?} of {b}"
                        ),
                    ));
                }
            }
        }
    }

    // Operand liveness + types.
    for &b in &reachable {
        for &v in f.block_insts(b) {
            let mut bad = None;
            f.kind(v).for_each_operand(|op| {
                if op.index() >= f.num_insts() {
                    bad = Some(format!("{v} uses out-of-range {op}"));
                } else if matches!(f.kind(op), InstKind::Nop) {
                    bad = Some(format!("{v} uses deleted value {op}"));
                }
            });
            if let Some(msg) = bad {
                return Err(err_at(f, b, v, msg));
            }
            check_types(f, v, module)?;
        }
    }

    // Dominance.
    verify_dominance(f, &reachable)?;

    Ok(())
}

fn reachable_blocks(f: &Function) -> HashSet<Block> {
    let mut seen = HashSet::new();
    let mut stack = vec![f.entry_block()];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            for s in f.succs(b) {
                stack.push(s);
            }
        }
    }
    seen
}

fn check_types(f: &Function, v: Value, module: Option<&Module>) -> Result<(), VerifyError> {
    let e = |msg: String| Err(err_at(f, f.inst(v).block, v, msg));
    match f.kind(v) {
        InstKind::Binary(op, a, b) => {
            let (ta, tb) = (f.ty(*a), f.ty(*b));
            if ta != tb {
                return e(format!(
                    "{v}: binop operand types differ ({ta:?} vs {tb:?})"
                ));
            }
            if op.is_float() && ta != Some(Type::F64) {
                return e(format!("{v}: float binop on non-float"));
            }
            if !op.is_float() && ta == Some(Type::F64) {
                return e(format!("{v}: int binop on float"));
            }
        }
        InstKind::Icmp(_, a, b) => {
            let (ta, tb) = (f.ty(*a), f.ty(*b));
            if ta != tb {
                return e(format!("{v}: icmp operand types differ"));
            }
            if ta == Some(Type::F64) {
                return e(format!("{v}: icmp on float"));
            }
        }
        InstKind::Fcmp(_, a, b) if (f.ty(*a) != Some(Type::F64) || f.ty(*b) != Some(Type::F64)) => {
            return e(format!("{v}: fcmp on non-float"));
        }
        InstKind::Load { ptr } if f.ty(*ptr) != Some(Type::Ptr) => {
            return e(format!("{v}: load through non-pointer"));
        }
        InstKind::Store { ptr, .. } if f.ty(*ptr) != Some(Type::Ptr) => {
            return e(format!("{v}: store through non-pointer"));
        }
        InstKind::Gep { base, index, .. } => {
            if f.ty(*base) != Some(Type::Ptr) {
                return e(format!("{v}: gep base is not a pointer"));
            }
            if !f.ty(*index).is_some_and(|t| t.is_int()) {
                return e(format!("{v}: gep index is not an integer"));
            }
        }
        InstKind::Call { func, args } => {
            if let Some(m) = module {
                if func.index() >= m.num_functions() {
                    return e(format!("{v}: call to nonexistent {func}"));
                }
                let callee = m.function(*func);
                if callee.sig.params.len() != args.len() {
                    return e(format!(
                        "{v}: call to `{}` with {} args, expected {}",
                        callee.name,
                        args.len(),
                        callee.sig.params.len()
                    ));
                }
                for (i, (a, want)) in args.iter().zip(&callee.sig.params).enumerate() {
                    if f.ty(*a) != Some(*want) {
                        return e(format!("{v}: call arg {i} type mismatch"));
                    }
                }
                if f.ty(v) != callee.sig.ret {
                    return e(format!("{v}: call result type mismatch"));
                }
            }
        }
        InstKind::IntrinsicCall { intr, args } => {
            let (params, ret) = intr.signature();
            if params.len() != args.len() {
                return e(format!(
                    "{v}: intrinsic {intr} with {} args, expected {}",
                    args.len(),
                    params.len()
                ));
            }
            for (i, (a, want)) in args.iter().zip(params).enumerate() {
                if f.ty(*a) != Some(*want) {
                    return e(format!("{v}: intrinsic {intr} arg {i} type mismatch"));
                }
            }
            if f.ty(v) != ret {
                return e(format!("{v}: intrinsic {intr} result type mismatch"));
            }
        }
        InstKind::Select { tval, fval, .. } if f.ty(*tval) != f.ty(*fval) => {
            return e(format!("{v}: select arm types differ"));
        }
        InstKind::Phi(incs) => {
            for (_, iv) in incs {
                if f.ty(*iv) != f.ty(v) {
                    return e(format!("{v}: phi incoming type mismatch"));
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// Iterative dominator computation (bitset-free, predecessor-intersection on
/// reverse-postorder), then a per-use dominance check.
fn verify_dominance(f: &Function, reachable: &HashSet<Block>) -> Result<(), VerifyError> {
    // Reverse postorder.
    let mut order = Vec::new();
    let mut state: Vec<u8> = vec![0; f.num_blocks()];
    let mut stack = vec![(f.entry_block(), 0usize)];
    state[f.entry_block().index()] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.succs(b);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    let mut rpo_num = vec![usize::MAX; f.num_blocks()];
    for (i, b) in order.iter().enumerate() {
        rpo_num[b.index()] = i;
    }

    // Cooper-Harvey-Kennedy.
    let mut idom: Vec<Option<Block>> = vec![None; f.num_blocks()];
    idom[f.entry_block().index()] = Some(f.entry_block());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let preds: Vec<Block> = f
                .preds(b)
                .into_iter()
                .filter(|p| idom[p.index()].is_some())
                .collect();
            let Some(&first) = preds.first() else {
                continue;
            };
            let mut new_idom = first;
            for &p in &preds[1..] {
                new_idom = intersect(&idom, &rpo_num, p, new_idom);
            }
            if idom[b.index()] != Some(new_idom) {
                idom[b.index()] = Some(new_idom);
                changed = true;
            }
        }
    }

    let dominates = |a: Block, b: Block| -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let Some(next) = idom[cur.index()] else {
                return false;
            };
            if next == cur {
                return cur == a;
            }
            cur = next;
        }
    };

    // Per-use dominance. Within a block, position indices order defs/uses.
    let mut pos = vec![usize::MAX; f.num_insts()];
    for &b in reachable {
        for (i, &v) in f.block_insts(b).iter().enumerate() {
            pos[v.index()] = i;
        }
    }
    for &b in reachable {
        for &v in f.block_insts(b) {
            if let InstKind::Phi(incs) = f.kind(v) {
                // Phi operands must dominate the end of the incoming edge's block.
                for (p, iv) in incs {
                    let defb = f.inst(*iv).block;
                    if !dominates(defb, *p) {
                        return Err(err_at(
                            f,
                            b,
                            v,
                            format!("phi {v}: incoming {iv} from {p} not dominated by def"),
                        ));
                    }
                }
                continue;
            }
            let mut bad = None;
            f.kind(v).for_each_operand(|op| {
                if bad.is_some() {
                    return;
                }
                let defb = f.inst(op).block;
                let ok = if defb == b {
                    pos[op.index()] < pos[v.index()]
                } else {
                    dominates(defb, b)
                };
                if !ok {
                    bad = Some(format!("{v} uses {op} which does not dominate it"));
                }
            });
            if let Some(msg) = bad {
                return Err(err_at(f, b, v, msg));
            }
        }
    }
    Ok(())
}

fn intersect(idom: &[Option<Block>], rpo: &[usize], mut a: Block, mut b: Block) -> Block {
    while a != b {
        while rpo[a.index()] > rpo[b.index()] {
            a = idom[a.index()].expect("processed pred");
        }
        while rpo[b.index()] > rpo[a.index()] {
            b = idom[b.index()].expect("processed pred");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{InstData, Signature};
    use crate::inst::BinOp;
    use crate::Module;

    fn module_with(f: impl FnOnce(&mut FunctionBuilder)) -> Module {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let mut b = FunctionBuilder::new(m.function_mut(id));
        f(&mut b);
        m
    }

    #[test]
    fn accepts_simple_function() {
        let m = module_with(|b| {
            let x = b.param(0);
            let y = b.binop(BinOp::Add, x, x);
            b.ret(Some(y));
        });
        assert!(m.verify().is_ok());
    }

    #[test]
    fn rejects_unterminated_block() {
        let m = module_with(|b| {
            let x = b.param(0);
            b.binop(BinOp::Add, x, x);
        });
        let e = m.verify().unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
        // Block-level error: located to the block, no single instruction.
        assert_eq!(e.block, Some(0));
        assert_eq!(e.inst, None);
        assert!(e.to_string().contains("at bb0"), "{e}");
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        let f = m.function_mut(id);
        let e = f.entry_block();
        // Emit ret first, then the const it "uses" — use before def.
        let placeholder = f.push_inst(
            e,
            InstData {
                kind: InstKind::ConstInt(0),
                ty: Some(Type::I64),
                block: e,
            },
        );
        let r = f.push_inst(
            e,
            InstData {
                kind: InstKind::Ret(Some(placeholder)),
                ty: None,
                block: e,
            },
        );
        let late = f.push_inst(
            e,
            InstData {
                kind: InstKind::ConstInt(1),
                ty: Some(Type::I64),
                block: e,
            },
        );
        // Move `late` before the terminator but after ret's use rewrite.
        f.remove_inst(late);
        let _ = r;
        // Rewire ret to use a value defined after it.
        let after = f.insert_after(
            r,
            InstData {
                kind: InstKind::ConstInt(2),
                ty: Some(Type::I64),
                block: e,
            },
        );
        f.replace_all_uses(placeholder, after);
        assert!(m.verify().is_err());
    }

    #[test]
    fn rejects_type_mismatch_binop() {
        let m = module_with(|b| {
            let x = b.param(0);
            let f = b.fconst(1.0);
            let bad = b.binop(BinOp::Add, x, f);
            b.ret(Some(bad));
        });
        let e = m.verify().unwrap_err();
        assert!(e.message.contains("binop"), "{e}");
        // Instruction-level error: both coordinates filled in.
        assert_eq!(e.block, Some(0));
        assert_eq!(e.inst, Some(2));
        assert!(e.to_string().contains("at bb0 %2"), "{e}");
    }

    #[test]
    fn rejects_float_icmp() {
        let m = module_with(|b| {
            let f1 = b.fconst(1.0);
            let f2 = b.fconst(2.0);
            let c = b.icmp(crate::CmpOp::Slt, f1, f2);
            b.ret(Some(c));
        });
        assert!(m.verify().is_err());
    }

    #[test]
    fn rejects_phi_label_mismatch() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let entry = b.entry_block();
            let next = b.create_block();
            let bogus = b.create_block();
            let c = b.iconst(Type::I64, 1);
            b.br(next);
            b.switch_to_block(next);
            // Wrong label: claims to come from `bogus`, actual pred is entry.
            let p = b.phi(Type::I64, &[(bogus, c)]);
            b.ret(Some(p));
            let _ = entry;
        }
        let e = m.verify().unwrap_err();
        assert!(e.message.contains("phi"), "{e}");
    }

    #[test]
    fn rejects_use_of_deleted_value() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        let f = m.function_mut(id);
        let e = f.entry_block();
        let c = f.push_inst(
            e,
            InstData {
                kind: InstKind::ConstInt(1),
                ty: Some(Type::I64),
                block: e,
            },
        );
        f.push_inst(
            e,
            InstData {
                kind: InstKind::Ret(Some(c)),
                ty: None,
                block: e,
            },
        );
        f.remove_inst(c);
        let err = m.verify().unwrap_err();
        assert!(err.message.contains("deleted"), "{err}");
        assert_eq!(err.block, Some(0));
        assert_eq!(err.inst, Some(1));
    }

    #[test]
    fn rejects_value_defined_in_nondominating_block() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let then_bb = b.create_block();
            let else_bb = b.create_block();
            let join = b.create_block();
            let x = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(crate::CmpOp::Sgt, x, zero);
            b.cond_br(c, then_bb, else_bb);
            b.switch_to_block(then_bb);
            let only_then = b.binop(BinOp::Add, x, x);
            b.br(join);
            b.switch_to_block(else_bb);
            b.br(join);
            b.switch_to_block(join);
            b.ret(Some(only_then)); // not dominated: else path skips the def
        }
        let e = m.verify().unwrap_err();
        assert!(e.message.contains("dominate"), "{e}");
        // The bad use is the ret in the join block.
        assert_eq!(e.block, Some(3));
        assert!(e.inst.is_some());
    }

    #[test]
    fn accepts_diamond_with_phi() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let then_bb = b.create_block();
            let else_bb = b.create_block();
            let join = b.create_block();
            let x = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(crate::CmpOp::Sgt, x, zero);
            b.cond_br(c, then_bb, else_bb);
            b.switch_to_block(then_bb);
            let a = b.binop(BinOp::Add, x, x);
            b.br(join);
            b.switch_to_block(else_bb);
            let s = b.binop(BinOp::Sub, x, x);
            b.br(join);
            b.switch_to_block(join);
            let p = b.phi(Type::I64, &[(then_bb, a), (else_bb, s)]);
            b.ret(Some(p));
        }
        m.verify().unwrap();
    }

    #[test]
    fn rejects_bad_intrinsic_arity() {
        let m = module_with(|b| {
            let p = b.intrinsic(crate::Intrinsic::RuntimeInit, vec![]);
            let _ = p;
            let x = b.param(0);
            // malloc expects i64; pass nothing.
            let bad = b.intrinsic(crate::Intrinsic::Malloc, vec![]);
            let _ = bad;
            b.ret(Some(x));
        });
        assert!(m.verify().is_err());
    }
}
