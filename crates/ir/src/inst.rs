//! Instruction kinds, operators and intrinsics.

use crate::entities::{Block, FuncId, GlobalId, Value};
use crate::types::Type;
use std::fmt;

/// Integer and floating-point binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer add (wrapping).
    Add,
    /// Integer subtract (wrapping).
    Sub,
    /// Integer multiply (wrapping).
    Mul,
    /// Signed integer divide.
    Sdiv,
    /// Unsigned integer divide.
    Udiv,
    /// Signed remainder.
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Floating add.
    Fadd,
    /// Floating subtract.
    Fsub,
    /// Floating multiply.
    Fmul,
    /// Floating divide.
    Fdiv,
}

impl BinOp {
    /// True for the floating-point operators.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv)
    }

    /// Operator mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Srem => "srem",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
        }
    }
}

/// Integer comparison predicates. Comparisons produce an `i64` 0/1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpOp {
    /// Predicate mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Slt => "slt",
            CmpOp::Sle => "sle",
            CmpOp::Sgt => "sgt",
            CmpOp::Sge => "sge",
            CmpOp::Ult => "ult",
            CmpOp::Ule => "ule",
            CmpOp::Ugt => "ugt",
            CmpOp::Uge => "uge",
        }
    }
}

/// Floating-point comparison predicates (ordered only).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FCmpOp {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered less-than.
    Olt,
    /// Ordered less-or-equal.
    Ole,
    /// Ordered greater-than.
    Ogt,
    /// Ordered greater-or-equal.
    Oge,
}

impl FCmpOp {
    /// Predicate mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::Oeq => "oeq",
            FCmpOp::One => "one",
            FCmpOp::Olt => "olt",
            FCmpOp::Ole => "ole",
            FCmpOp::Ogt => "ogt",
            FCmpOp::Oge => "oge",
        }
    }
}

/// Value casts.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    /// Zero-extend a narrower integer.
    Zext,
    /// Sign-extend a narrower integer.
    Sext,
    /// Truncate a wider integer.
    Trunc,
    /// Reinterpret an integer as a pointer.
    IntToPtr,
    /// Reinterpret a pointer as an integer.
    PtrToInt,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (truncating).
    FpToSi,
    /// Bit-identical reinterpretation between same-width types.
    Bitcast,
}

impl CastOp {
    /// Cast mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::IntToPtr => "inttoptr",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::Bitcast => "bitcast",
        }
    }
}

/// Runtime intrinsics.
///
/// These model the libc allocation entry points plus the hooks that the
/// TrackFM compiler injects (guards, loop chunking, prefetch, runtime
/// initialization), per §3 of the paper. The simulator gives each one its
/// operational semantics and cycle cost.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    /// `malloc(size) -> ptr` — libc allocation (pre-transform).
    Malloc,
    /// `calloc(n, size) -> ptr` — zeroed allocation (pre-transform).
    Calloc,
    /// `realloc(ptr, size) -> ptr` (pre-transform).
    Realloc,
    /// `free(ptr)` (pre-transform).
    Free,
    /// `tfm.alloc(size) -> ptr` — TrackFM-managed allocation returning a
    /// non-canonical pointer (post libc-transform, §3.1).
    TfmAlloc,
    /// `tfm.calloc(n, size) -> ptr` — zeroed TrackFM allocation.
    TfmCalloc,
    /// `tfm.realloc(ptr, size) -> ptr` — TrackFM reallocation.
    TfmRealloc,
    /// `tfm.free(ptr)` — release TrackFM-managed memory.
    TfmFree,
    /// `tfm.runtime.init()` — inserted in `main` by the runtime
    /// initialization pass (§3.1).
    RuntimeInit,
    /// `tfm.guard.read(ptr) -> ptr` — full guard before a load (Fig. 4):
    /// custody check, state-table lookup, fast or slow path; returns a
    /// canonical localized pointer.
    GuardRead,
    /// `tfm.guard.write(ptr) -> ptr` — full guard before a store.
    GuardWrite,
    /// `tfm.chunk.begin(ptr, flags) -> handle` — set up a loop-chunking
    /// stream over a TrackFM pointer (Fig. 5). Flag bit 0 = write intent,
    /// bit 1 = enable stride prefetching.
    ChunkBegin,
    /// `tfm.chunk.deref(handle, ptr) -> ptr` — object-boundary check: cheap
    /// when `ptr` stays within the pinned object, locality-invariant guard at
    /// boundaries.
    ChunkDeref,
    /// `tfm.chunk.end(handle)` — unpin the stream's current object.
    ChunkEnd,
    /// `tfm.prefetch(ptr)` — asynchronous localization hint.
    Prefetch,
    /// `memcpy(dst, src, n)`.
    Memcpy,
    /// `memset(dst, byte, n)`.
    Memset,
}

impl Intrinsic {
    /// The intrinsic's symbolic name, as shown by the printer.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Malloc => "malloc",
            Intrinsic::Calloc => "calloc",
            Intrinsic::Realloc => "realloc",
            Intrinsic::Free => "free",
            Intrinsic::TfmAlloc => "tfm.alloc",
            Intrinsic::TfmCalloc => "tfm.calloc",
            Intrinsic::TfmRealloc => "tfm.realloc",
            Intrinsic::TfmFree => "tfm.free",
            Intrinsic::RuntimeInit => "tfm.runtime.init",
            Intrinsic::GuardRead => "tfm.guard.read",
            Intrinsic::GuardWrite => "tfm.guard.write",
            Intrinsic::ChunkBegin => "tfm.chunk.begin",
            Intrinsic::ChunkDeref => "tfm.chunk.deref",
            Intrinsic::ChunkEnd => "tfm.chunk.end",
            Intrinsic::Prefetch => "tfm.prefetch",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memset => "memset",
        }
    }

    /// `(parameter types, return type)` for verification.
    pub fn signature(self) -> (&'static [Type], Option<Type>) {
        use Type::*;
        match self {
            Intrinsic::Malloc => (&[I64], Some(Ptr)),
            Intrinsic::Calloc => (&[I64, I64], Some(Ptr)),
            Intrinsic::Realloc => (&[Ptr, I64], Some(Ptr)),
            Intrinsic::Free => (&[Ptr], None),
            Intrinsic::TfmAlloc => (&[I64], Some(Ptr)),
            Intrinsic::TfmCalloc => (&[I64, I64], Some(Ptr)),
            Intrinsic::TfmRealloc => (&[Ptr, I64], Some(Ptr)),
            Intrinsic::TfmFree => (&[Ptr], None),
            Intrinsic::RuntimeInit => (&[], None),
            Intrinsic::GuardRead => (&[Ptr], Some(Ptr)),
            Intrinsic::GuardWrite => (&[Ptr], Some(Ptr)),
            Intrinsic::ChunkBegin => (&[Ptr, I64], Some(I64)),
            Intrinsic::ChunkDeref => (&[I64, Ptr], Some(Ptr)),
            Intrinsic::ChunkEnd => (&[I64], None),
            Intrinsic::Prefetch => (&[Ptr], None),
            Intrinsic::Memcpy => (&[Ptr, Ptr, I64], None),
            Intrinsic::Memset => (&[Ptr, I64, I64], None),
        }
    }

    /// True for the intrinsics that allocate heap memory (either the libc
    /// originals or the TrackFM-managed replacements).
    pub fn is_allocation(self) -> bool {
        matches!(
            self,
            Intrinsic::Malloc
                | Intrinsic::Calloc
                | Intrinsic::Realloc
                | Intrinsic::TfmAlloc
                | Intrinsic::TfmCalloc
                | Intrinsic::TfmRealloc
        )
    }

    /// True for the guard intrinsics injected by the guard transform.
    pub fn is_guard(self) -> bool {
        matches!(self, Intrinsic::GuardRead | Intrinsic::GuardWrite)
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Flag bit for [`Intrinsic::ChunkBegin`]: the stream will be written.
pub const CHUNK_FLAG_WRITE: i64 = 1;
/// Flag bit for [`Intrinsic::ChunkBegin`]: enable stride prefetching.
pub const CHUNK_FLAG_PREFETCH: i64 = 2;

/// An instruction.
///
/// SSA results are identified by the instruction's own [`Value`] id; the
/// instruction's result type lives in [`crate::InstData::ty`].
#[derive(Clone, PartialEq, Debug)]
pub enum InstKind {
    /// Tombstone left behind by passes that delete instructions.
    Nop,
    /// The `n`-th function parameter (materialized in the entry block).
    Param(u16),
    /// Integer constant (value stored sign-extended to i64).
    ConstInt(i64),
    /// Floating-point constant.
    ConstFloat(f64),
    /// Binary arithmetic/logic.
    Binary(BinOp, Value, Value),
    /// Integer comparison producing i64 0/1.
    Icmp(CmpOp, Value, Value),
    /// Float comparison producing i64 0/1.
    Fcmp(FCmpOp, Value, Value),
    /// Value cast.
    Cast(CastOp, Value),
    /// Static stack slot of `size` bytes; yields a pointer.
    Alloca {
        /// Slot size in bytes.
        size: u32,
        /// Slot alignment in bytes.
        align: u32,
    },
    /// Typed load through a pointer.
    Load {
        /// Address operand.
        ptr: Value,
    },
    /// Typed store through a pointer.
    Store {
        /// Address operand.
        ptr: Value,
        /// Value operand.
        val: Value,
    },
    /// Address computation: `base + index * scale + disp`.
    Gep {
        /// Base pointer.
        base: Value,
        /// Element index (i64).
        index: Value,
        /// Element stride in bytes.
        scale: u32,
        /// Constant byte displacement.
        disp: i64,
    },
    /// Direct call to a module function.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument values.
        args: Vec<Value>,
    },
    /// Call to a runtime intrinsic.
    IntrinsicCall {
        /// Which intrinsic.
        intr: Intrinsic,
        /// Argument values.
        args: Vec<Value>,
    },
    /// Address of a module global.
    GlobalAddr(GlobalId),
    /// SSA merge: `(predecessor block, incoming value)` pairs.
    Phi(Vec<(Block, Value)>),
    /// Two-way select: `cond != 0 ? tval : fval`.
    Select {
        /// Condition (integer).
        cond: Value,
        /// Value when true.
        tval: Value,
        /// Value when false.
        fval: Value,
    },
    /// Unconditional branch.
    Br(Block),
    /// Conditional branch on `cond != 0`.
    CondBr {
        /// Condition (integer).
        cond: Value,
        /// Target when true.
        then_bb: Block,
        /// Target when false.
        else_bb: Block,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Marks unreachable control flow.
    Unreachable,
}

impl InstKind {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br(_) | InstKind::CondBr { .. } | InstKind::Ret(_) | InstKind::Unreachable
        )
    }

    /// True if the instruction has side effects (cannot be removed even when
    /// its result is unused).
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstKind::Store { .. } | InstKind::Call { .. } | InstKind::IntrinsicCall { .. } => true,
            k => k.is_terminator(),
        }
    }

    /// Invokes `f` on every value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Nop
            | InstKind::Param(_)
            | InstKind::ConstInt(_)
            | InstKind::ConstFloat(_)
            | InstKind::Alloca { .. }
            | InstKind::GlobalAddr(_)
            | InstKind::Br(_)
            | InstKind::Unreachable => {}
            InstKind::Binary(_, a, b) | InstKind::Icmp(_, a, b) | InstKind::Fcmp(_, a, b) => {
                f(*a);
                f(*b);
            }
            InstKind::Cast(_, v) | InstKind::Load { ptr: v } => f(*v),
            InstKind::Store { ptr, val } => {
                f(*ptr);
                f(*val);
            }
            InstKind::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            InstKind::Call { args, .. } | InstKind::IntrinsicCall { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Phi(incs) => {
                for (_, v) in incs {
                    f(*v);
                }
            }
            InstKind::Select { cond, tval, fval } => {
                f(*cond);
                f(*tval);
                f(*fval);
            }
            InstKind::CondBr { cond, .. } => f(*cond),
            InstKind::Ret(v) => {
                if let Some(v) = v {
                    f(*v);
                }
            }
        }
    }

    /// Invokes `f` with a mutable reference to every value operand
    /// (used by `replace_all_uses`).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            InstKind::Nop
            | InstKind::Param(_)
            | InstKind::ConstInt(_)
            | InstKind::ConstFloat(_)
            | InstKind::Alloca { .. }
            | InstKind::GlobalAddr(_)
            | InstKind::Br(_)
            | InstKind::Unreachable => {}
            InstKind::Binary(_, a, b) | InstKind::Icmp(_, a, b) | InstKind::Fcmp(_, a, b) => {
                f(a);
                f(b);
            }
            InstKind::Cast(_, v) | InstKind::Load { ptr: v } => f(v),
            InstKind::Store { ptr, val } => {
                f(ptr);
                f(val);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::Call { args, .. } | InstKind::IntrinsicCall { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Phi(incs) => {
                for (_, v) in incs {
                    f(v);
                }
            }
            InstKind::Select { cond, tval, fval } => {
                f(cond);
                f(tval);
                f(fval);
            }
            InstKind::CondBr { cond, .. } => f(cond),
            InstKind::Ret(v) => {
                if let Some(v) = v {
                    f(v);
                }
            }
        }
    }

    /// Successor blocks of a terminator (empty for non-terminators).
    pub fn successors(&self) -> Vec<Block> {
        match self {
            InstKind::Br(b) => vec![*b],
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }

    /// Invokes `f` with a mutable reference to every successor block of a
    /// terminator (used by CFG edits).
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut Block)) {
        match self {
            InstKind::Br(b) => f(b),
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(InstKind::Br(Block(0)).is_terminator());
        assert!(InstKind::Ret(None).is_terminator());
        assert!(InstKind::Unreachable.is_terminator());
        assert!(!InstKind::ConstInt(3).is_terminator());
        assert!(!InstKind::Load { ptr: Value(0) }.is_terminator());
    }

    #[test]
    fn side_effects() {
        assert!(InstKind::Store {
            ptr: Value(0),
            val: Value(1)
        }
        .has_side_effects());
        assert!(InstKind::IntrinsicCall {
            intr: Intrinsic::Free,
            args: vec![Value(0)]
        }
        .has_side_effects());
        assert!(!InstKind::Binary(BinOp::Add, Value(0), Value(1)).has_side_effects());
        assert!(!InstKind::Load { ptr: Value(0) }.has_side_effects());
    }

    #[test]
    fn operand_iteration_matches_mutation() {
        let kinds = vec![
            InstKind::Binary(BinOp::Add, Value(1), Value(2)),
            InstKind::Store {
                ptr: Value(3),
                val: Value(4),
            },
            InstKind::Gep {
                base: Value(5),
                index: Value(6),
                scale: 8,
                disp: 0,
            },
            InstKind::Phi(vec![(Block(0), Value(7)), (Block(1), Value(8))]),
            InstKind::Select {
                cond: Value(9),
                tval: Value(10),
                fval: Value(11),
            },
            InstKind::Ret(Some(Value(12))),
            InstKind::IntrinsicCall {
                intr: Intrinsic::Memcpy,
                args: vec![Value(13), Value(14), Value(15)],
            },
        ];
        for mut k in kinds {
            let mut seen = Vec::new();
            k.for_each_operand(|v| seen.push(v));
            let mut seen_mut = Vec::new();
            k.for_each_operand_mut(|v| seen_mut.push(*v));
            assert_eq!(seen, seen_mut);
            assert!(!seen.is_empty());
        }
    }

    #[test]
    fn successors() {
        assert_eq!(InstKind::Br(Block(2)).successors(), vec![Block(2)]);
        assert_eq!(
            InstKind::CondBr {
                cond: Value(0),
                then_bb: Block(1),
                else_bb: Block(2)
            }
            .successors(),
            vec![Block(1), Block(2)]
        );
        assert!(InstKind::Ret(None).successors().is_empty());
    }

    #[test]
    fn intrinsic_signatures_are_consistent() {
        for intr in [
            Intrinsic::Malloc,
            Intrinsic::Calloc,
            Intrinsic::Realloc,
            Intrinsic::Free,
            Intrinsic::TfmAlloc,
            Intrinsic::TfmCalloc,
            Intrinsic::TfmRealloc,
            Intrinsic::TfmFree,
            Intrinsic::RuntimeInit,
            Intrinsic::GuardRead,
            Intrinsic::GuardWrite,
            Intrinsic::ChunkBegin,
            Intrinsic::ChunkDeref,
            Intrinsic::ChunkEnd,
            Intrinsic::Prefetch,
            Intrinsic::Memcpy,
            Intrinsic::Memset,
        ] {
            let (params, _ret) = intr.signature();
            assert!(params.len() <= 3, "{intr} has too many params");
            assert!(!intr.name().is_empty());
        }
        assert!(Intrinsic::Malloc.is_allocation());
        assert!(Intrinsic::TfmRealloc.is_allocation());
        assert!(!Intrinsic::Free.is_allocation());
        assert!(Intrinsic::GuardRead.is_guard());
        assert!(!Intrinsic::ChunkDeref.is_guard());
    }
}
