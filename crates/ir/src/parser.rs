//! Textual IR parsing — the inverse of the printer.
//!
//! Accepts exactly the syntax [`crate::Module`]'s `Display` emits (plus
//! whitespace/comment slack), so modules round-trip:
//! `parse_module(&m.to_string())` reproduces `m` up to value renumbering
//! (tombstone gaps are compacted), and printing the parse is a fixpoint.
//! This is what makes transformed programs diffable and lets tests pin
//! golden IR.

use crate::entities::{Block, FuncId, Value};
use crate::function::{InstData, Signature};
use crate::inst::{BinOp, CastOp, CmpOp, FCmpOp, InstKind, Intrinsic};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a module from the printer's textual format.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed input.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut name = "parsed".to_string();
    let mut i = 0;
    if let Some((_, l)) = lines.first() {
        if let Some(rest) = l.strip_prefix("; module ") {
            name = rest.trim().to_string();
            i = 1;
        }
    }
    let mut module = Module::new(name);

    // First pass over the remaining lines: globals and function headers (so
    // calls can resolve signatures while bodies parse).
    let mut func_bodies: Vec<(FuncId, usize, usize)> = Vec::new(); // (id, start, end) line indices
    let mut j = i;
    while j < lines.len() {
        let (ln, l) = lines[j];
        if l.starts_with("; ") || l.starts_with(";") && !l.starts_with("; module") {
            j += 1;
            continue;
        }
        if l.starts_with("global ") {
            parse_global(&mut module, ln, l)?;
            j += 1;
        } else if l.starts_with("func @") {
            let (fname, sig) = parse_func_header(ln, l)?;
            if module.find_function(&fname).is_some() {
                return err(ln, format!("duplicate function `{fname}`"));
            }
            let id = module.declare_function(fname, sig);
            // Find the closing brace.
            let start = j + 1;
            let mut k = start;
            while k < lines.len() && lines[k].1 != "}" {
                k += 1;
            }
            if k == lines.len() {
                return err(ln, "unterminated function body (missing `}`)");
            }
            func_bodies.push((id, start, k));
            j = k + 1;
        } else {
            return err(ln, format!("unexpected top-level line: `{l}`"));
        }
    }

    for (id, start, end) in func_bodies {
        parse_body(&mut module, id, &lines[start..end])?;
    }
    Ok(module)
}

fn parse_global(module: &mut Module, ln: usize, l: &str) -> Result<(), ParseError> {
    // global @g0 "name" [N bytes] [init = hh hh ...]
    let rest = &l["global ".len()..];
    let Some(q1) = rest.find('"') else {
        return err(ln, "global missing name");
    };
    let Some(q2) = rest[q1 + 1..].find('"') else {
        return err(ln, "global missing closing quote");
    };
    let gname = &rest[q1 + 1..q1 + 1 + q2];
    let after = &rest[q1 + q2 + 2..];
    let Some(b1) = after.find('[') else {
        return err(ln, "global missing size");
    };
    let Some(b2) = after.find(" bytes]") else {
        return err(ln, "global missing size unit");
    };
    let size: u64 = after[b1 + 1..b2].trim().parse().map_err(|_| ParseError {
        line: ln,
        message: "bad global size".into(),
    })?;
    let init = if let Some(pos) = after.find("init =") {
        let bytes: Result<Vec<u8>, _> = after[pos + 6..]
            .split_whitespace()
            .map(|t| u8::from_str_radix(t, 16))
            .collect();
        Some(bytes.map_err(|_| ParseError {
            line: ln,
            message: "bad init byte".into(),
        })?)
    } else {
        None
    };
    if init.as_ref().is_some_and(|b| b.len() as u64 > size) {
        return err(ln, "global initializer larger than the global");
    }
    module.add_global(gname, size, init);
    Ok(())
}

fn parse_func_header(ln: usize, l: &str) -> Result<(String, Signature), ParseError> {
    // func @name(ty %0, ty %1) [-> ty] {
    let rest = &l["func @".len()..];
    let Some(paren) = rest.find('(') else {
        return err(ln, "function missing parameter list");
    };
    let fname = rest[..paren].to_string();
    let Some(close) = rest.find(')') else {
        return err(ln, "function missing `)`");
    };
    let params_text = &rest[paren + 1..close];
    let mut params = Vec::new();
    for part in params_text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let ty_tok = part.split_whitespace().next().unwrap_or("");
        params.push(parse_type(ln, ty_tok)?);
    }
    let after = rest[close + 1..].trim();
    let ret = if let Some(r) = after.strip_prefix("->") {
        let tok = r.trim().trim_end_matches('{').trim();
        Some(parse_type(ln, tok)?)
    } else {
        None
    };
    Ok((fname, Signature::new(params, ret)))
}

fn parse_type(ln: usize, tok: &str) -> Result<Type, ParseError> {
    match tok {
        "i8" => Ok(Type::I8),
        "i16" => Ok(Type::I16),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        _ => err(ln, format!("unknown type `{tok}`")),
    }
}

struct BodyCtx {
    /// textual value id → arena value
    values: HashMap<u32, Value>,
    /// textual block id → block
    blocks: HashMap<u32, Block>,
}

fn parse_body(module: &mut Module, id: FuncId, lines: &[(usize, &str)]) -> Result<(), ParseError> {
    let mut ctx = BodyCtx {
        values: HashMap::new(),
        blocks: HashMap::new(),
    };
    // Parameters already exist.
    for n in 0..module.function(id).sig.params.len() {
        ctx.values.insert(n as u32, Value::from_index(n));
    }
    ctx.blocks.insert(0, module.function(id).entry_block());

    // Pass 1: create blocks and placeholder instructions so forward
    // references (phis, branches) resolve.
    let mut current = module.function(id).entry_block();
    let mut placeholders: Vec<(usize, Value)> = Vec::new(); // (line index, inst)
    for (li, (ln, l)) in lines.iter().enumerate() {
        if let Some(bb) = l.strip_suffix(':') {
            let n = parse_block_id(*ln, bb)?;
            let b = *ctx
                .blocks
                .entry(n)
                .or_insert_with(|| module.function_mut(id).create_block());
            current = b;
            continue;
        }
        // A definition or a bare instruction.
        let (def, _rest) = split_def(l);
        if let Some(def) = def {
            if let Some(&existing) = ctx.values.get(&def) {
                // Parameter lines re-state existing definitions.
                if l.contains("param.") {
                    placeholders.push((li, existing));
                    continue;
                }
                return err(*ln, format!("duplicate definition of %{def}"));
            }
            let v = module.function_mut(id).push_inst(
                current,
                InstData {
                    kind: InstKind::Unreachable, // placeholder, replaced in pass 2
                    ty: None,
                    block: current,
                },
            );
            ctx.values.insert(def, v);
            placeholders.push((li, v));
        } else {
            let v = module.function_mut(id).push_inst(
                current,
                InstData {
                    kind: InstKind::Unreachable,
                    ty: None,
                    block: current,
                },
            );
            placeholders.push((li, v));
        }
        // Branch targets may name blocks not yet seen.
        for tok in l
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.starts_with("bb"))
        {
            if let Ok(n) = tok[2..].parse::<u32>() {
                ctx.blocks
                    .entry(n)
                    .or_insert_with(|| module.function_mut(id).create_block());
            }
        }
    }

    // Pass 2: fill in instruction kinds.
    for (li, v) in placeholders {
        let (ln, l) = lines[li];
        let (kind, ty) = parse_inst(module, &ctx, ln, l)?;
        if let InstKind::Param(_) = kind {
            continue; // parameters already materialized by declare_function
        }
        let f = module.function_mut(id);
        f.inst_mut(v).kind = kind;
        f.inst_mut(v).ty = ty;
    }
    Ok(())
}

fn parse_block_id(ln: usize, tok: &str) -> Result<u32, ParseError> {
    tok.strip_prefix("bb")
        .and_then(|n| n.parse().ok())
        .ok_or(ParseError {
            line: ln,
            message: format!("bad block label `{tok}`"),
        })
}

/// Splits `%N = rest` into `(Some(N), rest)`, otherwise `(None, line)`.
fn split_def(l: &str) -> (Option<u32>, &str) {
    if let Some(stripped) = l.strip_prefix('%') {
        if let Some(eq) = stripped.find('=') {
            let idtok = stripped[..eq].trim();
            if let Ok(n) = idtok.parse::<u32>() {
                return (Some(n), stripped[eq + 1..].trim());
            }
        }
    }
    (None, l)
}

fn parse_inst(
    module: &Module,
    ctx: &BodyCtx,
    ln: usize,
    l: &str,
) -> Result<(InstKind, Option<Type>), ParseError> {
    let (_, body) = split_def(l);
    let (mn, rest) = body.split_once(' ').unwrap_or((body, ""));
    let rest = rest.trim();
    let val = |tok: &str| -> Result<Value, ParseError> {
        let t = tok.trim().trim_start_matches('%');
        let n: u32 = t.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad value `{tok}`"),
        })?;
        ctx.values.get(&n).copied().ok_or(ParseError {
            line: ln,
            message: format!("undefined value %{n}"),
        })
    };
    let block = |tok: &str| -> Result<Block, ParseError> {
        let n = parse_block_id(ln, tok.trim())?;
        ctx.blocks.get(&n).copied().ok_or(ParseError {
            line: ln,
            message: format!("undefined block bb{n}"),
        })
    };
    let two = |rest: &str| -> Result<(Value, Value), ParseError> {
        let (a, b) = rest.split_once(',').ok_or(ParseError {
            line: ln,
            message: "expected two operands".into(),
        })?;
        Ok((val(a)?, val(b)?))
    };

    // Mnemonics with a `.suffix`.
    if let Some((base, suffix)) = mn.split_once('.') {
        // Binary ops.
        let binop = match base {
            "add" => Some(BinOp::Add),
            "sub" => Some(BinOp::Sub),
            "mul" => Some(BinOp::Mul),
            "sdiv" => Some(BinOp::Sdiv),
            "udiv" => Some(BinOp::Udiv),
            "srem" => Some(BinOp::Srem),
            "urem" => Some(BinOp::Urem),
            "and" => Some(BinOp::And),
            "or" => Some(BinOp::Or),
            "xor" => Some(BinOp::Xor),
            "shl" => Some(BinOp::Shl),
            "lshr" => Some(BinOp::Lshr),
            "ashr" => Some(BinOp::Ashr),
            "fadd" => Some(BinOp::Fadd),
            "fsub" => Some(BinOp::Fsub),
            "fmul" => Some(BinOp::Fmul),
            "fdiv" => Some(BinOp::Fdiv),
            _ => None,
        };
        if let Some(op) = binop {
            let ty = parse_type(ln, suffix)?;
            let (a, b) = two(rest)?;
            return Ok((InstKind::Binary(op, a, b), Some(ty)));
        }
        let cast = match base {
            "zext" => Some(CastOp::Zext),
            "sext" => Some(CastOp::Sext),
            "trunc" => Some(CastOp::Trunc),
            "inttoptr" => Some(CastOp::IntToPtr),
            "ptrtoint" => Some(CastOp::PtrToInt),
            "sitofp" => Some(CastOp::SiToFp),
            "fptosi" => Some(CastOp::FpToSi),
            "bitcast" => Some(CastOp::Bitcast),
            _ => None,
        };
        if let Some(op) = cast {
            let ty = parse_type(ln, suffix)?;
            return Ok((InstKind::Cast(op, val(rest)?), Some(ty)));
        }
        match base {
            "param" => {
                return Ok((InstKind::Param(0), None)); // sentinel; skipped by caller
            }
            "iconst" => {
                let ty = parse_type(ln, suffix)?;
                let c: i64 = rest.parse().map_err(|_| ParseError {
                    line: ln,
                    message: format!("bad integer constant `{rest}`"),
                })?;
                return Ok((InstKind::ConstInt(c), Some(ty)));
            }
            "load" => {
                let ty = parse_type(ln, suffix)?;
                return Ok((InstKind::Load { ptr: val(rest)? }, Some(ty)));
            }
            "icmp" => {
                let op = parse_cmp(ln, suffix)?;
                let (a, b) = two(rest)?;
                return Ok((InstKind::Icmp(op, a, b), Some(Type::I64)));
            }
            "fcmp" => {
                let op = parse_fcmp(ln, suffix)?;
                let (a, b) = two(rest)?;
                return Ok((InstKind::Fcmp(op, a, b), Some(Type::I64)));
            }
            "phi" => {
                let ty = parse_type(ln, suffix)?;
                let mut incs = Vec::new();
                // [bb0: %2], [bb2: %9]
                for part in rest.split(']') {
                    let part = part.trim().trim_start_matches(',').trim();
                    let Some(inner) = part.strip_prefix('[') else {
                        continue;
                    };
                    let (bb, v) = inner.split_once(':').ok_or(ParseError {
                        line: ln,
                        message: "bad phi incoming".into(),
                    })?;
                    incs.push((block(bb)?, val(v)?));
                }
                return Ok((InstKind::Phi(incs), Some(ty)));
            }
            "select" => {
                let ty = parse_type(ln, suffix)?;
                let parts: Vec<&str> = rest.split(',').collect();
                if parts.len() != 3 {
                    return err(ln, "select needs three operands");
                }
                return Ok((
                    InstKind::Select {
                        cond: val(parts[0])?,
                        tval: val(parts[1])?,
                        fval: val(parts[2])?,
                    },
                    Some(ty),
                ));
            }
            _ => return err(ln, format!("unknown mnemonic `{mn}`")),
        }
    }

    match mn {
        "nop" => Ok((InstKind::Nop, None)),
        "fconst" => {
            let c: f64 = rest.parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad float constant `{rest}`"),
            })?;
            Ok((InstKind::ConstFloat(c), Some(Type::F64)))
        }
        "alloca" => {
            // alloca N, align A
            let (sz, al) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                message: "alloca needs size and alignment".into(),
            })?;
            let size: u32 = sz.trim().parse().map_err(|_| ParseError {
                line: ln,
                message: "bad alloca size".into(),
            })?;
            let align: u32 = al
                .trim()
                .strip_prefix("align ")
                .and_then(|a| a.parse().ok())
                .ok_or(ParseError {
                    line: ln,
                    message: "bad alloca alignment".into(),
                })?;
            Ok((InstKind::Alloca { size, align }, Some(Type::Ptr)))
        }
        "store" => {
            let (v, p) = two(rest)?;
            Ok((InstKind::Store { ptr: p, val: v }, None))
        }
        "gep" => {
            // gep %base, %idx x SCALE + DISP
            let (base_tok, tail) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                message: "gep needs base and index".into(),
            })?;
            let (idx_tok, tail) = tail.split_once(" x ").ok_or(ParseError {
                line: ln,
                message: "gep missing scale".into(),
            })?;
            let (scale_tok, disp_tok) = tail.split_once(" + ").ok_or(ParseError {
                line: ln,
                message: "gep missing displacement".into(),
            })?;
            Ok((
                InstKind::Gep {
                    base: val(base_tok)?,
                    index: val(idx_tok)?,
                    scale: scale_tok.trim().parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad gep scale".into(),
                    })?,
                    disp: disp_tok.trim().parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad gep displacement".into(),
                    })?,
                },
                Some(Type::Ptr),
            ))
        }
        "call" => {
            // call @fN(args) | call intrinsic.name(args)
            let Some(paren) = rest.find('(') else {
                return err(ln, "call missing `(`");
            };
            let callee = rest[..paren].trim();
            let args_text = rest[paren + 1..].trim_end_matches(')');
            let mut args = Vec::new();
            for a in args_text.split(',') {
                let a = a.trim();
                if !a.is_empty() {
                    args.push(val(a)?);
                }
            }
            if let Some(fidx) = callee.strip_prefix("@f") {
                let fi: usize = fidx.parse().map_err(|_| ParseError {
                    line: ln,
                    message: format!("bad callee `{callee}`"),
                })?;
                if fi >= module.num_functions() {
                    return err(ln, format!("call to undeclared {callee}"));
                }
                let fid = FuncId::from_index(fi);
                let ret = module.function(fid).sig.ret;
                Ok((InstKind::Call { func: fid, args }, ret))
            } else {
                let intr = parse_intrinsic(ln, callee)?;
                let (_, ret) = intr.signature();
                Ok((InstKind::IntrinsicCall { intr, args }, ret))
            }
        }
        "global_addr" => {
            let g = rest
                .trim()
                .strip_prefix("@g")
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or(ParseError {
                    line: ln,
                    message: format!("bad global ref `{rest}`"),
                })?;
            if g >= module.num_globals() {
                return err(ln, "reference to undeclared global");
            }
            Ok((
                InstKind::GlobalAddr(crate::entities::GlobalId::from_index(g)),
                Some(Type::Ptr),
            ))
        }
        "br" => Ok((InstKind::Br(block(rest)?), None)),
        "cond_br" => {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return err(ln, "cond_br needs condition and two targets");
            }
            Ok((
                InstKind::CondBr {
                    cond: val(parts[0])?,
                    then_bb: block(parts[1])?,
                    else_bb: block(parts[2])?,
                },
                None,
            ))
        }
        "ret" => {
            if rest.is_empty() {
                Ok((InstKind::Ret(None), None))
            } else {
                Ok((InstKind::Ret(Some(val(rest)?)), None))
            }
        }
        "unreachable" => Ok((InstKind::Unreachable, None)),
        _ => err(ln, format!("unknown instruction `{mn}`")),
    }
}

fn parse_cmp(ln: usize, tok: &str) -> Result<CmpOp, ParseError> {
    Ok(match tok {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "slt" => CmpOp::Slt,
        "sle" => CmpOp::Sle,
        "sgt" => CmpOp::Sgt,
        "sge" => CmpOp::Sge,
        "ult" => CmpOp::Ult,
        "ule" => CmpOp::Ule,
        "ugt" => CmpOp::Ugt,
        "uge" => CmpOp::Uge,
        _ => return err(ln, format!("unknown icmp predicate `{tok}`")),
    })
}

fn parse_fcmp(ln: usize, tok: &str) -> Result<FCmpOp, ParseError> {
    Ok(match tok {
        "oeq" => FCmpOp::Oeq,
        "one" => FCmpOp::One,
        "olt" => FCmpOp::Olt,
        "ole" => FCmpOp::Ole,
        "ogt" => FCmpOp::Ogt,
        "oge" => FCmpOp::Oge,
        _ => return err(ln, format!("unknown fcmp predicate `{tok}`")),
    })
}

fn parse_intrinsic(ln: usize, tok: &str) -> Result<Intrinsic, ParseError> {
    for intr in [
        Intrinsic::Malloc,
        Intrinsic::Calloc,
        Intrinsic::Realloc,
        Intrinsic::Free,
        Intrinsic::TfmAlloc,
        Intrinsic::TfmCalloc,
        Intrinsic::TfmRealloc,
        Intrinsic::TfmFree,
        Intrinsic::RuntimeInit,
        Intrinsic::GuardRead,
        Intrinsic::GuardWrite,
        Intrinsic::ChunkBegin,
        Intrinsic::ChunkDeref,
        Intrinsic::ChunkEnd,
        Intrinsic::Prefetch,
        Intrinsic::Memcpy,
        Intrinsic::Memset,
    ] {
        if intr.name() == tok {
            return Ok(intr);
        }
    }
    err(ln, format!("unknown intrinsic `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp as B, FunctionBuilder, Module, Signature, Type};

    fn roundtrip(m: &Module) {
        let text1 = m.to_string();
        let parsed = parse_module(&text1).unwrap_or_else(|e| panic!("{e}\n{text1}"));
        parsed
            .verify()
            .unwrap_or_else(|e| panic!("{e}\n{}", parsed));
        let text2 = parsed.to_string();
        let parsed2 = parse_module(&text2).unwrap();
        let text3 = parsed2.to_string();
        assert_eq!(text2, text3, "printing must be a parse fixpoint");
    }

    #[test]
    fn roundtrips_loop_with_everything() {
        let mut m = Module::new("rt");
        let g = m.add_global("lut", 16, Some(vec![1, 2, 0xAB]));
        let helper = m.declare_function("helper", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(helper));
            let x = b.param(0);
            let one = b.iconst(Type::I64, 1);
            let y = b.binop(B::Add, x, one);
            b.ret(Some(y));
        }
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100);
            let ga = b.global_addr(g);
            let slot = b.alloca(8, 8);
            b.store(slot, zero);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(p, i, 8, -8);
                let x = b.load(Type::I64, addr);
                let fx = b.cast(crate::CastOp::SiToFp, x, Type::F64);
                let c = b.fconst(1.5);
                let fy = b.binop(B::Fmul, fx, c);
                let yc = b.cast(crate::CastOp::FpToSi, fy, Type::I64);
                let cl = b.call(helper, vec![yc], Some(Type::I64));
                let gv = b.load(Type::I8, ga);
                let gvx = b.cast(crate::CastOp::Zext, gv, Type::I64);
                let cmp = b.icmp(crate::CmpOp::Sgt, cl, gvx);
                let sel = b.select(cmp, cl, gvx);
                b.store(slot, sel);
            });
            let out = b.load(Type::I64, slot);
            b.ret(Some(out));
        }
        m.verify().unwrap();
        roundtrip(&m);
    }

    #[test]
    fn roundtrips_intrinsics() {
        let mut m = Module::new("rt");
        let id = m.declare_function("main", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            b.intrinsic(crate::Intrinsic::RuntimeInit, vec![]);
            let p = b.malloc_const(256);
            let g = b.intrinsic(crate::Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g);
            let n = b.iconst(Type::I64, 16);
            b.intrinsic(crate::Intrinsic::Memset, vec![p, n, n]);
            b.intrinsic(crate::Intrinsic::Free, vec![p]);
            b.ret(None);
        }
        m.verify().unwrap();
        roundtrip(&m);
    }

    #[test]
    fn parses_semantically_equal_values() {
        // Parse a hand-written module and check structure.
        let text = "\
; module hand
func @main(i64 %0) -> i64 {
bb0:
  %1 = iconst.i64 41
  %2 = add.i64 %0, %1
  ret %2
}
";
        let m = parse_module(text).unwrap();
        m.verify().unwrap();
        let f = m.function(m.find_function("main").unwrap());
        assert_eq!(f.sig.params, vec![Type::I64]);
        assert_eq!(f.num_live_insts(), 4);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let bad = "; module x\nfunc @f() {\nbb0:\n  %1 = bogus.i64 3\n  ret\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("bogus"));

        let undef = "; module x\nfunc @f() -> i64 {\nbb0:\n  ret %9\n}\n";
        let e = parse_module(undef).unwrap_err();
        assert!(e.message.contains("undefined value"));

        let noclose = "; module x\nfunc @f() {\nbb0:\n  ret\n";
        assert!(parse_module(noclose).is_err());
    }

    #[test]
    fn roundtrips_after_tombstones() {
        // Removing an instruction leaves arena gaps; printing + parsing
        // must still produce a valid, stable module.
        let mut m = Module::new("rt");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.param(0);
            let dead = b.iconst(Type::I64, 99);
            let one = b.iconst(Type::I64, 1);
            let y = b.binop(B::Add, x, one);
            b.ret(Some(y));
            let _ = dead;
        }
        // Delete the dead constant: ids are now non-contiguous.
        let f = m.function_mut(id);
        let dead = f.block_insts(f.entry_block())[1];
        f.remove_inst(dead);
        m.verify().unwrap();
        roundtrip(&m);
    }

    #[test]
    fn roundtrips_float_specials() {
        let mut m = Module::new("rt");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::F64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let inf = b.fconst(f64::INFINITY);
            let half = b.fconst(0.5);
            let s = b.binop(B::Fadd, inf, half);
            b.ret(Some(s));
        }
        roundtrip(&m);
    }
}

#[cfg(test)]
mod fuzz {
    use super::parse_module;

    /// Tiny deterministic PRNG (SplitMix64) — keeps the fuzz tests free of
    /// external dependencies and reproducible from the seed alone.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            ((self.next() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// The parser must never panic, only return `Err`, on arbitrary input.
    #[test]
    fn parser_never_panics_on_junk() {
        let mut rng = Rng(0xF00D);
        for _ in 0..512 {
            let len = rng.below(201) as usize;
            let s: String = (0..len)
                .map(|_| {
                    // Mostly printable ASCII with occasional arbitrary
                    // Unicode scalars.
                    if rng.below(8) == 0 {
                        char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
                    } else {
                        (0x20 + rng.below(95) as u8) as char
                    }
                })
                .collect();
            let _ = parse_module(&s);
        }
    }

    /// Same for inputs that look almost like IR.
    #[test]
    fn parser_never_panics_on_irish_junk() {
        const PARTS: &[&str] = &[
            "; module x",
            "func @f() {",
            "func @g(i64 %0) -> ptr {",
            "}",
            "bb0:",
            "bb1:",
            "  %1 = iconst.i64 5",
            "  %2 = add.i64 %1, %1",
            "  %3 = gep %1, %2 x 8 + -8",
            "  %4 = phi.i64 [bb0: %1]",
            "  store %1, %2",
            "  br bb9",
            "  cond_br %1, bb0, bb1",
            "  ret",
            "  ret %7",
            "  call malloc(%1)",
            "  %5 = call @f9()",
            "global @g0 \"x\" [8 bytes]",
            "  %6 = alloca 8, align",
            "  unreachable",
        ];
        let mut rng = Rng(0xBEEF);
        for _ in 0..512 {
            let n = rng.below(24) as usize;
            let text: Vec<&str> = (0..n)
                .map(|_| PARTS[rng.below(PARTS.len() as u64) as usize])
                .collect();
            let _ = parse_module(&text.join("\n"));
        }
    }
}
