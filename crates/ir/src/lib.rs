//! # tfm-ir — the TrackFM intermediate representation
//!
//! A compact SSA intermediate representation modeled on LLVM IR, serving as the
//! substrate on which the TrackFM far-memory compiler (the `trackfm` crate)
//! runs its analyses and transformations.
//!
//! The paper ("TrackFM: Far-out Compiler Support for a Far Memory World",
//! ASPLOS 2024) implements its passes on LLVM + NOELLE. This crate provides the
//! equivalent program representation from scratch:
//!
//! * [`Module`]s contain [`Function`]s and globals;
//! * functions are CFGs of basic [`Block`]s holding instructions in SSA form
//!   (every instruction result is an immutable [`Value`], merges use
//!   [`InstKind::Phi`]);
//! * memory is accessed through typed `Load`/`Store` and address arithmetic
//!   through `Gep` (base + index × scale + displacement), mirroring LLVM's
//!   `getelementptr`;
//! * runtime interactions — `malloc`/`free` as well as the guard, chunking and
//!   prefetch hooks that TrackFM injects — are [`Intrinsic`] calls.
//!
//! The representation is deliberately arena-based: instruction ids
//! ([`Value`]s) are stable across pass mutations, deleted instructions become
//! [`InstKind::Nop`] tombstones, and block instruction lists are re-ordered in
//! place. This is the same engineering trade LLVM makes and it keeps the
//! TrackFM passes simple.
//!
//! ## Example
//!
//! Build and print the `sum` loop from Listing 1 of the paper (before any
//! far-memory transformation):
//!
//! ```
//! use tfm_ir::{Module, Signature, Type, FunctionBuilder, BinOp, CmpOp};
//!
//! let mut m = Module::new("listing1");
//! let f = m.declare_function("sum", Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)));
//! {
//!     let mut b = FunctionBuilder::new(m.function_mut(f));
//!     let (arr, n) = (b.param(0), b.param(1));
//!     let header = b.create_block();
//!     let body = b.create_block();
//!     let exit = b.create_block();
//!     let zero = b.iconst(Type::I64, 0);
//!     b.br(header);
//!
//!     b.switch_to_block(header);
//!     let i = b.phi(Type::I64, &[(b.entry_block(), zero)]);
//!     let sum = b.phi(Type::I64, &[(b.entry_block(), zero)]);
//!     let cont = b.icmp(CmpOp::Slt, i, n);
//!     b.cond_br(cont, body, exit);
//!
//!     b.switch_to_block(body);
//!     let addr = b.gep(arr, i, 8, 0);
//!     let elem = b.load(Type::I64, addr);
//!     let sum2 = b.binop(BinOp::Add, sum, elem);
//!     let one = b.iconst(Type::I64, 1);
//!     let i2 = b.binop(BinOp::Add, i, one);
//!     b.add_phi_incoming(i, body, i2);
//!     b.add_phi_incoming(sum, body, sum2);
//!     b.br(header);
//!
//!     b.switch_to_block(exit);
//!     b.ret(Some(sum));
//! }
//! m.verify().expect("well-formed module");
//! ```

mod builder;
mod entities;
mod function;
mod inst;
mod module;
mod parser;
mod printer;
mod types;
mod verifier;

pub use builder::FunctionBuilder;
pub use entities::{Block, FuncId, GlobalId, Value};
pub use function::{BlockData, Function, InstData, Signature};
pub use inst::{
    BinOp, CastOp, CmpOp, FCmpOp, InstKind, Intrinsic, CHUNK_FLAG_PREFETCH, CHUNK_FLAG_WRITE,
};
pub use module::{Global, Module};
pub use parser::{parse_module, ParseError};
pub use types::Type;
pub use verifier::{verify_function, verify_module, VerifyError};
