//! A positional instruction builder, in the style of LLVM's `IRBuilder`.

use crate::entities::{Block, FuncId, GlobalId, Value};
use crate::function::{Function, InstData};
use crate::inst::{BinOp, CastOp, CmpOp, FCmpOp, InstKind, Intrinsic};
use crate::types::Type;

/// Builds instructions at the end of a current block.
///
/// The builder borrows the function mutably; create blocks up front (or as
/// you go), then `switch_to_block` and append. Phi nodes for loop-carried
/// values are created with their forward edges and completed later with
/// [`FunctionBuilder::add_phi_incoming`].
///
/// See the crate-level docs for a complete loop-building example.
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    current: Block,
}

impl<'f> FunctionBuilder<'f> {
    /// Starts building in the function's entry block.
    pub fn new(func: &'f mut Function) -> Self {
        let current = func.entry_block();
        FunctionBuilder { func, current }
    }

    /// The function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// The entry block.
    pub fn entry_block(&self) -> Block {
        self.func.entry_block()
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> Block {
        self.current
    }

    /// The `n`-th function parameter.
    pub fn param(&self, n: usize) -> Value {
        self.func.param(n)
    }

    /// Creates a new empty block (does not switch to it).
    pub fn create_block(&mut self) -> Block {
        self.func.create_block()
    }

    /// Makes `b` the insertion block.
    pub fn switch_to_block(&mut self, b: Block) {
        self.current = b;
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Type>) -> Value {
        let block = self.current;
        self.func.push_inst(block, InstData { kind, ty, block })
    }

    /// Emits an integer constant of type `ty`.
    pub fn iconst(&mut self, ty: Type, v: i64) -> Value {
        debug_assert!(ty.is_int() || ty.is_ptr());
        self.emit(InstKind::ConstInt(v), Some(ty))
    }

    /// Emits an `f64` constant.
    pub fn fconst(&mut self, v: f64) -> Value {
        self.emit(InstKind::ConstFloat(v), Some(Type::F64))
    }

    /// Emits a binary operation; the result type is the type of `a`.
    pub fn binop(&mut self, op: BinOp, a: Value, b: Value) -> Value {
        let ty = self.func.ty(a);
        self.emit(InstKind::Binary(op, a, b), ty)
    }

    /// Emits an integer comparison (result: i64 0/1).
    pub fn icmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.emit(InstKind::Icmp(op, a, b), Some(Type::I64))
    }

    /// Emits a float comparison (result: i64 0/1).
    pub fn fcmp(&mut self, op: FCmpOp, a: Value, b: Value) -> Value {
        self.emit(InstKind::Fcmp(op, a, b), Some(Type::I64))
    }

    /// Emits a cast to `ty`.
    pub fn cast(&mut self, op: CastOp, v: Value, ty: Type) -> Value {
        self.emit(InstKind::Cast(op, v), Some(ty))
    }

    /// Emits a stack slot of `size` bytes aligned to `align`.
    pub fn alloca(&mut self, size: u32, align: u32) -> Value {
        self.emit(InstKind::Alloca { size, align }, Some(Type::Ptr))
    }

    /// Emits a typed load.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.emit(InstKind::Load { ptr }, Some(ty))
    }

    /// Emits a typed store.
    pub fn store(&mut self, ptr: Value, val: Value) {
        self.emit(InstKind::Store { ptr, val }, None);
    }

    /// Emits `base + index * scale + disp`.
    pub fn gep(&mut self, base: Value, index: Value, scale: u32, disp: i64) -> Value {
        self.emit(
            InstKind::Gep {
                base,
                index,
                scale,
                disp,
            },
            Some(Type::Ptr),
        )
    }

    /// Emits a direct call. `ret` must match the callee's signature (checked
    /// by the verifier).
    pub fn call(&mut self, func: FuncId, args: Vec<Value>, ret: Option<Type>) -> Value {
        self.emit(InstKind::Call { func, args }, ret)
    }

    /// Emits an intrinsic call; the result type comes from the intrinsic's
    /// signature.
    pub fn intrinsic(&mut self, intr: Intrinsic, args: Vec<Value>) -> Value {
        let (_, ret) = intr.signature();
        self.emit(InstKind::IntrinsicCall { intr, args }, ret)
    }

    /// Emits the address of a global.
    pub fn global_addr(&mut self, g: GlobalId) -> Value {
        self.emit(InstKind::GlobalAddr(g), Some(Type::Ptr))
    }

    /// Emits a phi with initial incoming edges; complete loop-carried edges
    /// later with [`FunctionBuilder::add_phi_incoming`].
    pub fn phi(&mut self, ty: Type, incomings: &[(Block, Value)]) -> Value {
        self.emit(InstKind::Phi(incomings.to_vec()), Some(ty))
    }

    /// Adds an incoming edge to a previously created phi.
    pub fn add_phi_incoming(&mut self, phi: Value, pred: Block, val: Value) {
        self.func.add_phi_incoming(phi, pred, val);
    }

    /// Emits a select.
    pub fn select(&mut self, cond: Value, tval: Value, fval: Value) -> Value {
        let ty = self.func.ty(tval);
        self.emit(InstKind::Select { cond, tval, fval }, ty)
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: Block) {
        self.emit(InstKind::Br(target), None);
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: Block, else_bb: Block) {
        self.emit(
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            },
            None,
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.emit(InstKind::Ret(v), None);
    }

    /// Terminates the current block as unreachable.
    pub fn unreachable(&mut self) {
        self.emit(InstKind::Unreachable, None);
    }

    // ---- convenience helpers used heavily by the workload builders ----

    /// `malloc(size_const)` with `size` emitted as a fresh i64 constant.
    pub fn malloc_const(&mut self, size: i64) -> Value {
        let s = self.iconst(Type::I64, size);
        self.intrinsic(Intrinsic::Malloc, vec![s])
    }

    /// Emits a canonical counted loop skeleton and calls `body` to populate
    /// the loop body.
    ///
    /// The loop runs `i` from `start` (an existing value) while `i < bound`,
    /// stepping by `step`. `body(builder, i)` is invoked with the insertion
    /// point inside the body block; it must NOT terminate the block. Returns
    /// the exit block (left as the current block).
    pub fn counted_loop(
        &mut self,
        start: Value,
        bound: Value,
        step: i64,
        body: impl FnOnce(&mut Self, Value),
    ) -> Block {
        let pre = self.current_block();
        let header = self.create_block();
        let body_bb = self.create_block();
        let exit = self.create_block();
        self.br(header);

        self.switch_to_block(header);
        let i = self.phi(Type::I64, &[(pre, start)]);
        let cont = self.icmp(CmpOp::Slt, i, bound);
        self.cond_br(cont, body_bb, exit);

        self.switch_to_block(body_bb);
        body(self, i);
        let latch = self.current_block();
        let stepc = self.iconst(Type::I64, step);
        let inext = self.binop(BinOp::Add, i, stepc);
        self.add_phi_incoming(i, latch, inext);
        self.br(header);

        self.switch_to_block(exit);
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Signature;
    use crate::module::Module;

    #[test]
    fn builds_straightline_code() {
        let mut m = Module::new("t");
        let f = m.declare_function(
            "add3",
            Signature::new(vec![Type::I64, Type::I64, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let s1 = b.binop(BinOp::Add, b.param(0), b.param(1));
            let s2 = b.binop(BinOp::Add, s1, b.param(2));
            b.ret(Some(s2));
        }
        m.verify().unwrap();
    }

    #[test]
    fn counted_loop_helper_is_well_formed() {
        let mut m = Module::new("t");
        let f = m.declare_function("count", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(zero));
        }
        m.verify().unwrap();
    }

    #[test]
    fn intrinsic_ret_type_from_signature() {
        let mut m = Module::new("t");
        let f = m.declare_function("a", Signature::new(vec![], Some(Type::Ptr)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let p = b.malloc_const(128);
            assert_eq!(b.func().ty(p), Some(Type::Ptr));
            b.ret(Some(p));
        }
        m.verify().unwrap();
    }

    #[test]
    fn select_and_casts_typecheck() {
        let mut m = Module::new("t");
        let f = m.declare_function("s", Signature::new(vec![Type::I64], Some(Type::F64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let x = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(CmpOp::Sgt, x, zero);
            let fx = b.cast(CastOp::SiToFp, x, Type::F64);
            let f0 = b.fconst(0.0);
            let sel = b.select(c, fx, f0);
            b.ret(Some(sel));
        }
        m.verify().unwrap();
    }
}
