//! Modules: collections of functions and global data.

use crate::entities::{FuncId, GlobalId};
use crate::function::{Function, Signature};
use crate::verifier::{verify_module, VerifyError};

/// A global data object.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Symbolic name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Optional initializer (must be at most `size` bytes; the remainder is
    /// zero-filled).
    pub init: Option<Vec<u8>>,
}

/// A compilation unit: functions plus globals.
///
/// # Example
/// ```
/// use tfm_ir::{Module, Signature, Type};
/// let mut m = Module::new("demo");
/// let f = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
/// assert_eq!(m.function(f).name, "main");
/// assert_eq!(m.find_function("main"), Some(f));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Module name (for diagnostics).
    pub name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Declares a new function and returns its id.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn declare_function(&mut self, name: impl Into<String>, sig: Signature) -> FuncId {
        let name = name.into();
        assert!(
            self.find_function(&name).is_none(),
            "duplicate function name: {name}"
        );
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(Function::new(name, sig));
        id
    }

    /// Adds a global data object.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        size: u64,
        init: Option<Vec<u8>>,
    ) -> GlobalId {
        if let Some(ref bytes) = init {
            assert!(
                bytes.len() as u64 <= size,
                "global initializer larger than the global"
            );
        }
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
        });
        id
    }

    /// Shared access to a function.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    #[inline]
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Iterator over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// All function ids.
    pub fn function_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len()).map(FuncId::from_index)
    }

    /// Number of functions.
    #[inline]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Shared access to a global.
    #[inline]
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Iterator over `(id, global)` pairs.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId::from_index(i), g))
    }

    /// Number of globals.
    #[inline]
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Total live instruction count across all functions — the "code size"
    /// metric used by the §4.6 compilation-cost experiment.
    pub fn total_live_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_live_insts()).sum()
    }

    /// Verifies every function in the module.
    ///
    /// # Errors
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify_module(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn declare_and_find() {
        let mut m = Module::new("m");
        let f = m.declare_function("a", Signature::new(vec![Type::I64], None));
        let g = m.declare_function("b", Signature::new(vec![], Some(Type::F64)));
        assert_eq!(m.find_function("a"), Some(f));
        assert_eq!(m.find_function("b"), Some(g));
        assert_eq!(m.find_function("c"), None);
        assert_eq!(m.num_functions(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut m = Module::new("m");
        m.declare_function("a", Signature::new(vec![], None));
        m.declare_function("a", Signature::new(vec![], None));
    }

    #[test]
    fn globals() {
        let mut m = Module::new("m");
        let g = m.add_global("table", 64, Some(vec![1, 2, 3]));
        assert_eq!(m.global(g).size, 64);
        assert_eq!(m.global(g).init.as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(m.num_globals(), 1);
    }

    #[test]
    #[should_panic(expected = "initializer larger")]
    fn oversized_initializer_rejected() {
        let mut m = Module::new("m");
        m.add_global("bad", 2, Some(vec![0; 3]));
    }

    #[test]
    fn total_live_insts_counts_params() {
        let mut m = Module::new("m");
        m.declare_function("a", Signature::new(vec![Type::I64, Type::I64], None));
        assert_eq!(m.total_live_insts(), 2);
    }
}
