//! Concurrency suite: the deterministic multi-core machine.
//!
//! Three properties make the issue/complete pipeline trustworthy:
//!
//! 1. **One wire transfer per object** — when a second core demands an
//!    object whose fetch is already in flight, it joins the pending entry
//!    and stalls for the remainder instead of issuing its own transfer.
//! 2. **Pay-for-use** — `cores(1)` is today's synchronous machine, bit for
//!    bit: same cycles, same counters, same rendered report, under faults,
//!    sharding and tracing alike (a 200-seed sweep).
//! 3. **Determinism** — `cores(N)` is a pure function of seed and config:
//!    the same inputs reproduce identical core clocks, stats, latencies
//!    and checksums on every run.

use trackfm_suite::compiler::TrackFmCompiler;
use trackfm_suite::net::FaultPlan;
use trackfm_suite::runtime::{FarMemory, FarMemoryConfig};
use trackfm_suite::sim::Machine;
use trackfm_suite::sim::TrackFmMem;
use trackfm_suite::telemetry::SiteKey;
use trackfm_suite::workloads::openloop::{
    execute_open_loop, execute_open_loop_with_report, open_loop, OpenLoopParams, OpenLoopSpec,
};
use trackfm_suite::workloads::runner::{self, Outcome, RunConfig};

/// SplitMix64, re-derived so the sweep's schedules are reproducible.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn second_core_joins_the_inflight_fetch_one_wire_transfer() {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 20,
        object_size: 4096,
        local_budget: 8 * 4096,
        ..FarMemoryConfig::small()
    };
    let mut fm = FarMemory::new(cfg);
    fm.set_async_fetch(true);
    let p = fm.allocate(4096, 0).unwrap();
    let o = fm.obj_of_offset(p.offset());
    fm.evacuate_all(0);
    fm.reset_stats();

    // Core 0 demands the object: it is charged only to the issue point
    // (queueing + wire occupancy, not the propagation latency), and the
    // object parks in the in-flight table. The delivery cycle flows out
    // through the completion horizon for request-latency accounting.
    fm.set_core(0);
    let link = fm.config().link;
    let delivery = link.solo_cost(4096);
    let issue_stall = fm.localize(o, false, 0);
    assert_eq!(
        issue_stall,
        delivery - link.base_latency,
        "the issuing core pays only to the issue point"
    );
    assert_eq!(fm.demand_inflight_len(), 1);
    assert_eq!(
        fm.take_completion_horizon(),
        delivery,
        "the delivery cycle is reported through the completion horizon"
    );

    // Core 1 demands the same object mid-flight: it joins the pending
    // entry — no second transfer, no stall — and its request completes at
    // the same delivery cycle, reported through the horizon.
    fm.set_core(1);
    let join_at = 5_000;
    let join_stall = fm.localize(o, false, join_at);
    assert_eq!(join_stall, 0, "the joining core moves on at once");
    assert_eq!(fm.take_completion_horizon(), delivery);
    assert_eq!(fm.stats().fetch_joins, 1);
    assert_eq!(fm.stats().remote_fetches, 1, "one demand fetch issued");
    assert_eq!(fm.transfer_stats().fetches, 1, "one transfer on the wire");

    // After delivery the entry is claimed silently; the object is simply
    // resident.
    let after = fm.localize(o, false, delivery + 1);
    assert_eq!(after, 0);
    assert_eq!(fm.demand_inflight_len(), 0);
    assert_eq!(fm.stats().fetch_joins, 1);
    assert_eq!(fm.transfer_stats().fetches, 1);
}

#[test]
fn synchronous_mode_never_populates_the_inflight_table() {
    let mut fm = FarMemory::new(FarMemoryConfig::small());
    let p = fm.allocate(4096, 0).unwrap();
    let o = fm.obj_of_offset(p.offset());
    fm.evacuate_all(0);
    fm.reset_stats();
    let stall = fm.localize(o, false, 0);
    assert!(stall > 0);
    assert_eq!(fm.demand_inflight_len(), 0);
    assert_eq!(fm.stats().fetch_joins, 0);
}

/// Runs the open-loop requests by hand on a plain synchronous machine —
/// exactly what the suite did before the scheduler existed — and builds the
/// same report the runner would.
fn manual_sync_outcome(ol: &OpenLoopSpec, cfg: &RunConfig) -> (Outcome, u64) {
    let mut module = ol.spec.module.clone();
    let report = TrackFmCompiler::new(cfg.compiler).compile(&mut module, None);
    let mem = TrackFmMem::new(runner::far_config(&ol.spec, cfg), cfg.cost);
    let heap = ol.spec.heap_size(cfg.object_size);
    let mut machine = Machine::new(&module, mem, cfg.cost, heap);
    let args = runner::setup(&ol.spec, &mut machine, false);
    let tel = if cfg.trace.enabled {
        trackfm_suite::telemetry::Telemetry::with_trace(cfg.trace)
    } else if cfg.telemetry {
        trackfm_suite::telemetry::Telemetry::enabled()
    } else {
        trackfm_suite::telemetry::Telemetry::disabled()
    };
    machine.set_telemetry(tel.clone());
    let mut last = None;
    for req in &ol.requests {
        let start = machine.clock().max(req.arrival);
        machine.set_clock(start);
        let mut call = args.clone();
        call.push(req.key);
        last = Some(machine.run("get", &call).unwrap());
    }
    let mut result = last.expect("at least one request");
    result.stats.cycles = machine.clock();
    let mut telemetry = tel.snapshot();
    if let Some(snap) = &mut telemetry {
        for s in &report.elision.sites {
            snap.sites
                .stats_mut(SiteKey::new(s.func, s.survivor))
                .elided += s.absorbed as u64;
        }
    }
    (
        Outcome {
            result,
            report: Some(report),
            telemetry,
        },
        machine.clock(),
    )
}

fn tiny(seed: u64) -> OpenLoopParams {
    OpenLoopParams {
        keys: 128 + (mix(seed) % 128) as usize,
        requests: 200,
        skew: 1.05,
        seed,
        mean_gap_cycles: 50 + mix(seed ^ 0xA5A5) % 400,
    }
}

/// Seed-dependent configuration spanning the whole feature matrix: plain,
/// sharded, replicated-with-crash, faulty links, traced.
fn vary(cfg: RunConfig, seed: u64) -> RunConfig {
    let mut cfg = cfg;
    if seed.is_multiple_of(7) {
        cfg = cfg
            .with_shards(4)
            .with_replicas(2)
            .with_faults(FaultPlan::none().with_cold_crash(
                50_000 + mix(seed ^ 3) % 100_000,
                400_000 + mix(seed ^ 4) % 200_000,
            ));
    } else if seed.is_multiple_of(3) {
        cfg = cfg.with_shards(1 + (mix(seed ^ 1) % 4) as u32);
    }
    if seed % 3 == 1 {
        cfg = cfg.with_faults(
            FaultPlan::none()
                .with_stalls(30_000, 2_000)
                .with_jitter(50_000, 500),
        );
    }
    if seed.is_multiple_of(5) {
        cfg = cfg.with_tracing();
    }
    cfg
}

#[test]
fn cores1_is_bitwise_identical_across_a_200_seed_sweep() {
    for seed in 0..200u64 {
        let ol = open_loop(&tiny(seed));
        let cfg = vary(RunConfig::trackfm(0.15).with_object_size(64), seed);
        let sched = execute_open_loop(&ol, &cfg);
        let (manual, clock) = manual_sync_outcome(&ol, &cfg);
        assert_eq!(
            sched.makespan, clock,
            "seed {seed}: simulated cycles differ"
        );
        assert_eq!(
            sched.outcome.result.stats, manual.result.stats,
            "seed {seed}"
        );
        assert_eq!(
            sched.outcome.result.runtime, manual.result.runtime,
            "seed {seed}"
        );
        assert_eq!(
            sched.outcome.result.transfers, manual.result.transfers,
            "seed {seed}"
        );
        assert_eq!(
            sched.outcome.result.shards, manual.result.shards,
            "seed {seed}"
        );
    }
}

#[test]
fn multi_core_runs_are_deterministic_across_the_sweep() {
    for seed in 0..200u64 {
        let ol = open_loop(&tiny(seed));
        let cores = 2 + (mix(seed ^ 9) % 7) as u32;
        let cfg = vary(RunConfig::trackfm(0.15).with_object_size(64), seed).with_cores(cores);
        let a = execute_open_loop(&ol, &cfg);
        let b = execute_open_loop(&ol, &cfg);
        assert_eq!(a.core_clocks, b.core_clocks, "seed {seed} ({cores} cores)");
        assert_eq!(a.makespan, b.makespan, "seed {seed}");
        assert_eq!(a.checksum, b.checksum, "seed {seed}");
        assert_eq!(
            a.outcome.result.stats, b.outcome.result.stats,
            "seed {seed}"
        );
        assert_eq!(
            a.outcome.result.runtime, b.outcome.result.runtime,
            "seed {seed}"
        );
        assert_eq!(
            a.outcome.result.transfers, b.outcome.result.transfers,
            "seed {seed}"
        );
    }
}

#[test]
fn cores1_report_renders_byte_identical_to_the_synchronous_machine() {
    // The strongest identity: with tracing, sharding and telemetry all on,
    // the scheduler's one-core report must render byte-for-byte the same as
    // one built from a hand-driven synchronous machine — no core lanes, no
    // async artifacts, nothing.
    let ol = open_loop(&OpenLoopParams {
        keys: 512,
        requests: 600,
        skew: 1.05,
        seed: 42,
        mean_gap_cycles: 300,
    });
    let cfg = RunConfig::trackfm(0.2)
        .with_object_size(64)
        .with_shards(2)
        .with_tracing();
    let (sched, rep) = execute_open_loop_with_report(&ol, &cfg);

    let cfg_tel = cfg.with_telemetry(true);
    let (manual, _) = manual_sync_outcome(&ol, &cfg_tel);
    let manual_rep = runner::build_report(&ol.spec, &cfg_tel, &manual);
    // The open-loop report adds scheduling metadata and the latency
    // histogram on top of the standard report; everything the synchronous
    // machine produces must match byte for byte.
    assert_eq!(sched.outcome.result.stats, manual.result.stats);
    let render = manual_rep.render();
    for line in render.lines() {
        assert!(
            rep.render().contains(line),
            "scheduler report lost a line of the synchronous report: {line}"
        );
    }
    assert!(!render.contains("core"), "no core artifacts at cores(1)");
    // And the traces agree span for span.
    let t_sched = runner::chrome_trace(&sched.outcome)
        .unwrap()
        .to_string_pretty();
    let t_manual = runner::chrome_trace(&manual).unwrap().to_string_pretty();
    assert_eq!(t_sched, t_manual, "chrome traces must be byte-identical");
}

#[test]
fn concurrent_demand_fetches_overlap_in_the_trace() {
    // The acceptance criterion made visible: a miss-heavy 4-core run must
    // show demand-fetch spans from different cores overlapping in simulated
    // time — the issue/complete pipeline at work.
    let ol = open_loop(&OpenLoopParams {
        keys: 2_000,
        requests: 2_000,
        skew: 1.05,
        seed: 7,
        mean_gap_cycles: 100,
    });
    let cfg = RunConfig::trackfm(0.1)
        .with_object_size(64)
        .with_prefetch(false)
        .with_cores(4)
        .with_tracing();
    let (run, _) = execute_open_loop_with_report(&ol, &cfg);
    let trace = run
        .outcome
        .telemetry
        .as_ref()
        .unwrap()
        .trace
        .as_ref()
        .unwrap();
    let fetches: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.core != trackfm_suite::telemetry::Span::NO_CORE)
        .collect();
    assert!(!fetches.is_empty(), "multi-core spans must be core-tagged");
    let mut cores_seen: Vec<u32> = fetches.iter().map(|s| s.core).collect();
    cores_seen.sort_unstable();
    cores_seen.dedup();
    assert!(cores_seen.len() >= 2, "work must spread across cores");
    let overlapping = fetches.iter().any(|a| {
        fetches
            .iter()
            .any(|b| b.core != a.core && b.start < a.end && a.start < b.end)
    });
    assert!(overlapping, "spans on different cores must overlap in time");
}
