//! Tracing suite: the causal span tree, its exports, and the pay-for-use
//! guarantee.
//!
//! Three properties pin span tracing down end to end:
//!
//! 1. **Causality** — under chaos on a sharded backend, the Chrome-trace
//!    export carries remote-guard root spans whose children (transfers,
//!    faulted attempts, retry/backoff waits) decompose the operation's
//!    latency: children tile the root, never exceed it, and the residue is
//!    the guard's own base cost.
//! 2. **Determinism** — the same seed produces byte-identical trace
//!    exports, run after run.
//! 3. **Pay-for-use** — with tracing off, cycles and the rendered report
//!    are bit-identical to a build that has never heard of spans.

use trackfm_suite::net::FaultPlan;
use trackfm_suite::telemetry::{Json, TraceConfig};
use trackfm_suite::workloads::hashmap::{hashmap, HashmapParams};
use trackfm_suite::workloads::runner::{
    build_report, chrome_trace, execute, execute_with_report, flamegraph, RunConfig,
};
use trackfm_suite::workloads::spec::WorkloadSpec;

fn spec() -> WorkloadSpec {
    // Zipf-skewed probes: random unchunked accesses → remote guard roots.
    hashmap(&HashmapParams {
        keys: 4_000,
        lookups: 4_000,
        skew: 1.02,
        seed: 0xC0FFEE,
    })
}

fn chaos_cfg() -> RunConfig {
    // 20% drops guarantee faulted transfers and retries on this schedule.
    RunConfig::trackfm(0.25)
        .with_shards(2)
        .with_faults(FaultPlan::drops(0xBAD_CAB1E, 200_000))
        .with_tracing()
}

/// One Chrome-trace `X` event, decoded just far enough to walk causality.
struct Ev {
    id: u64,
    parent: Option<u64>,
    kind: String,
    dur: u64,
    wait: u64,
    fault: Option<u64>,
    tid: u64,
}

fn decode(doc: &Json) -> Vec<Ev> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            let args = e.get("args").unwrap();
            Ev {
                id: args.get("id").and_then(Json::as_u64).unwrap(),
                parent: args.get("parent").and_then(Json::as_u64),
                kind: args.get("kind").and_then(Json::as_str).unwrap().to_string(),
                dur: e.get("dur").and_then(Json::as_u64).unwrap(),
                wait: args.get("wait").and_then(Json::as_u64).unwrap(),
                fault: args.get("fault").and_then(Json::as_u64),
                tid: e.get("tid").and_then(Json::as_u64).unwrap(),
            }
        })
        .collect()
}

/// The tentpole acceptance test: a sharded chaos run exports a Chrome
/// trace in which remote-guard roots decompose their latency into
/// transfer, faulted-attempt, and retry/backoff children.
#[test]
fn chaos_trace_decomposes_remote_guard_latency() {
    let (out, _) = execute_with_report(&spec(), &chaos_cfg());
    let doc = chrome_trace(&out).expect("tracing was on");
    let evs = decode(&doc);

    let roots: Vec<&Ev> = evs
        .iter()
        .filter(|e| e.kind == "guard_slow_remote" && e.parent.is_none())
        .collect();
    assert!(!roots.is_empty(), "chaos must produce remote guard roots");

    let mut with_fault_and_retry = 0;
    for r in roots {
        let kids: Vec<&Ev> = evs.iter().filter(|e| e.parent == Some(r.id)).collect();
        let faulted = kids
            .iter()
            .any(|k| k.fault.is_some() && (k.kind == "transfer" || k.kind == "writeback_transfer"));
        let retried = kids.iter().any(|k| k.kind == "retry" && k.wait > 0);
        if faulted && retried {
            with_fault_and_retry += 1;
        }
        // Children tile the root: they never exceed it, and the residue is
        // bounded by the guard's own (non-stall) base cost.
        let sum: u64 = kids.iter().map(|k| k.dur).sum();
        assert!(sum <= r.dur, "children ({sum}) exceed root ({})", r.dur);
        if !kids.is_empty() {
            assert!(
                r.dur - sum < 2_000,
                "unaccounted latency: root {} vs children {sum}",
                r.dur
            );
        }
    }
    assert!(
        with_fault_and_retry > 0,
        "at least one root must show a faulted transfer AND a backoff retry"
    );

    // Transfer leaves ride per-shard tracks; both shards saw traffic.
    let shard_tids: std::collections::BTreeSet<u64> = evs
        .iter()
        .filter(|e| e.kind == "transfer")
        .map(|e| e.tid)
        .collect();
    assert!(
        shard_tids.len() >= 2,
        "expected ≥2 shard tracks: {shard_tids:?}"
    );

    // The flamegraph shows the same decomposition, keyed by site label.
    let folded = flamegraph(&out).expect("tracing was on");
    assert!(folded.lines().any(|l| l.contains(";retry ")), "{folded}");
    assert!(folded.lines().any(|l| l.contains(";transfer ")), "{folded}");
}

/// Same seed, same schedule: both exports are byte-identical across runs.
#[test]
fn traces_are_deterministic() {
    let (a, rep_a) = execute_with_report(&spec(), &chaos_cfg());
    let (b, rep_b) = execute_with_report(&spec(), &chaos_cfg());
    assert_eq!(
        chrome_trace(&a).unwrap().to_string_pretty(),
        chrome_trace(&b).unwrap().to_string_pretty()
    );
    assert_eq!(flamegraph(&a).unwrap(), flamegraph(&b).unwrap());
    assert_eq!(
        rep_a.to_json().to_string_pretty(),
        rep_b.to_json().to_string_pretty()
    );
}

/// Tracing off is free: a disabled `TraceConfig` leaves cycles and the
/// whole report byte-identical to plain telemetry, and a telemetry-off run
/// byte-identical to itself before this subsystem existed.
#[test]
fn disabled_tracing_pays_nothing() {
    let spec = spec();
    let base = RunConfig::trackfm(0.25)
        .with_shards(2)
        .with_faults(FaultPlan::drops(0xBAD_CAB1E, 200_000));

    // telemetry on, tracing off vs. tracing config present but disabled.
    let plain = execute(&spec, &base.with_telemetry(true));
    let gated = execute(
        &spec,
        &base.with_telemetry(true).with_trace(TraceConfig::default()),
    );
    assert!(!TraceConfig::default().enabled);
    assert_eq!(plain.result.stats.cycles, gated.result.stats.cycles);
    let rep_plain = build_report(&spec, &base.with_telemetry(true), &plain);
    let rep_gated = build_report(&spec, &base.with_telemetry(true), &gated);
    assert_eq!(
        rep_plain.to_json().to_string_pretty(),
        rep_gated.to_json().to_string_pretty()
    );
    assert!(
        !rep_plain.to_json().to_string_pretty().contains("timeline"),
        "untraced reports must not grow a timeline section"
    );
    assert!(chrome_trace(&gated).is_none());
    assert!(flamegraph(&gated).is_none());

    // Tracing changes observation, never the simulation: traced cycles
    // match untraced cycles bit-for-bit.
    let traced = execute(&spec, &base.with_tracing());
    assert_eq!(traced.result.stats.cycles, plain.result.stats.cycles);
}
