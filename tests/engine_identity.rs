//! Engine bit-identity across the workload matrix.
//!
//! The bytecode engine's whole contract is that switching engines changes
//! *nothing* the simulation measures: results, simulated cycles, every
//! counter, every trap, every rendered report — under every system, and
//! under the hard configurations (fault injection, sharding, replication
//! with a mid-run crash, multi-core open-loop dispatch, span tracing).
//! These tests run the same workload+config on both engines and compare
//! the rendered [`RunReport`]s byte for byte, modulo the engine's own
//! telemetry lines (which exist precisely to make the engine choice
//! visible).

use trackfm_suite::net::{BackendSpec, FaultPlan};
use trackfm_suite::sim::ExecEngine;
use trackfm_suite::workloads::openloop::{
    execute_open_loop_with_report, open_loop, OpenLoopParams,
};
use trackfm_suite::workloads::runner::{execute_with_report, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

/// Strips the bytecode engine's self-identification from a rendered report:
/// the `engine=bytecode` meta entry and the `[  engine]` section line. What
/// remains must be byte-identical to the tree-walk rendering.
fn normalize(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| !l.trim_start().starts_with("[  engine]"))
        .map(|l| l.replace(" engine=bytecode", ""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs `cfg` on both engines and asserts byte-identical reports and
/// identical result payloads.
fn assert_config_identical(
    ctx: &str,
    spec: &trackfm_suite::workloads::WorkloadSpec,
    cfg: RunConfig,
) {
    let (tw_out, tw_rep) = execute_with_report(spec, &cfg);
    let (bc_out, bc_rep) = execute_with_report(spec, &cfg.with_engine(ExecEngine::Bytecode));
    assert_eq!(
        tw_out.result.ret, bc_out.result.ret,
        "{ctx}: results differ"
    );
    assert_eq!(
        tw_out.result.stats, bc_out.result.stats,
        "{ctx}: exec stats differ"
    );
    assert_eq!(
        tw_out.result.runtime, bc_out.result.runtime,
        "{ctx}: runtime stats differ"
    );
    assert_eq!(
        tw_out.result.pager, bc_out.result.pager,
        "{ctx}: pager stats differ"
    );
    assert_eq!(
        tw_out.result.transfers, bc_out.result.transfers,
        "{ctx}: transfer ledgers differ"
    );
    assert_eq!(
        tw_out.result.shards, bc_out.result.shards,
        "{ctx}: shard snapshots differ"
    );
    // The bytecode run must identify itself…
    assert!(
        bc_out.result.engine.lowered_fns > 0,
        "{ctx}: lowering counter"
    );
    assert!(
        bc_rep.render().contains("engine=bytecode"),
        "{ctx}: report must surface the engine"
    );
    assert!(
        bc_rep.render().contains("[  engine]"),
        "{ctx}: report must carry the engine section"
    );
    // …and the tree-walk run must look exactly like it always did.
    assert!(
        !tw_rep.render().contains("engine"),
        "{ctx}: tree-walk leaks"
    );
    // Everything else: byte-identical.
    assert_eq!(
        normalize(&tw_rep.render()),
        normalize(&bc_rep.render()),
        "{ctx}: rendered reports differ beyond the engine lines"
    );
}

/// Every system and the hard configurations, on one workload: fault
/// injection, sharding, replication with a scripted crash, span tracing.
#[test]
fn reports_are_byte_identical_across_systems_and_configs() {
    let spec = stream::sum(&StreamParams { elems: 32 << 10 });
    let configs: Vec<(&str, RunConfig)> = vec![
        ("local", RunConfig::local()),
        ("fastswap", RunConfig::fastswap(0.25)),
        ("trackfm", RunConfig::trackfm(0.25)),
        ("aifm", RunConfig::aifm(0.25)),
        ("hybrid", RunConfig::hybrid(0.25)),
        (
            "faults",
            RunConfig::trackfm(0.25).with_faults(FaultPlan::drops(0xC0FFEE, 50_000)),
        ),
        ("sharded", RunConfig::trackfm(0.25).with_shards(4)),
        (
            "replicated-crash",
            RunConfig::trackfm(0.25)
                .with_backend(BackendSpec::sharded(4).with_replicas(2).with_fault_shard(1))
                .with_faults(FaultPlan::none().with_cold_crash(100_000, 400_000)),
        ),
        ("tracing", RunConfig::trackfm(0.25).with_tracing()),
    ];
    for (name, cfg) in configs {
        assert_config_identical(name, &spec, cfg);
    }
}

/// The multi-core open-loop scheduler (async issue/complete fetch pipeline,
/// completion horizons, per-core clocks) on both engines: checksums,
/// makespans, core clocks, latency distributions, and rendered reports all
/// match, at one core and at four.
#[test]
fn open_loop_multicore_is_engine_invariant() {
    let ol = open_loop(&OpenLoopParams {
        keys: 2_000,
        requests: 2_000,
        skew: 1.05,
        seed: 11,
        mean_gap_cycles: 500,
    });
    for cores in [1, 4] {
        for cfg in [
            RunConfig::local().with_cores(cores),
            RunConfig::trackfm(0.25).with_cores(cores),
            RunConfig::trackfm(0.25).with_cores(cores).with_tracing(),
        ] {
            let ctx = format!("cores={cores} system={}", cfg.system.name());
            let (tw, tw_rep) = execute_open_loop_with_report(&ol, &cfg);
            let (bc, bc_rep) =
                execute_open_loop_with_report(&ol, &cfg.with_engine(ExecEngine::Bytecode));
            assert_eq!(tw.checksum, bc.checksum, "{ctx}: checksums differ");
            assert_eq!(tw.makespan, bc.makespan, "{ctx}: makespans differ");
            assert_eq!(tw.core_clocks, bc.core_clocks, "{ctx}: core clocks differ");
            assert_eq!(
                tw.latency.count(),
                bc.latency.count(),
                "{ctx}: latency counts differ"
            );
            assert_eq!(
                tw.outcome.result.stats, bc.outcome.result.stats,
                "{ctx}: exec stats differ"
            );
            assert_eq!(
                normalize(&tw_rep.render()),
                normalize(&bc_rep.render()),
                "{ctx}: rendered reports differ beyond the engine lines"
            );
        }
    }
}
