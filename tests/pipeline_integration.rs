//! Cross-crate integration tests of the compiler pipeline itself: pass
//! composition, output invariants, and the structural properties the paper
//! relies on.

use trackfm_suite::analysis::dom::DomTree;
use trackfm_suite::analysis::loops::LoopForest;
use trackfm_suite::compiler::{ChunkingMode, CompilerOptions, CostModel, TrackFmCompiler};
use trackfm_suite::ir::{BinOp, FunctionBuilder, InstKind, Intrinsic, Module, Signature, Type};
use trackfm_suite::workloads::{analytics, kmeans, memcached, nas, stream};

fn count_intrinsic(m: &Module, which: Intrinsic) -> usize {
    m.functions()
        .map(|(_, f)| {
            f.live_insts()
                .into_iter()
                .filter(|&v| {
                    matches!(f.kind(v), InstKind::IntrinsicCall { intr, .. } if *intr == which)
                })
                .count()
        })
        .sum()
}

fn workload_modules() -> Vec<(String, Module)> {
    vec![
        (
            "stream".into(),
            stream::sum(&stream::StreamParams { elems: 1024 }).module,
        ),
        (
            "kmeans".into(),
            kmeans::kmeans(&kmeans::KmeansParams {
                points: 100,
                dims: 4,
                k: 2,
                iters: 1,
            })
            .module,
        ),
        (
            "analytics".into(),
            analytics::analytics(&analytics::AnalyticsParams {
                rows: 500,
                groups: 50,
            })
            .module,
        ),
        (
            "memcached".into(),
            memcached::memcached(&memcached::MemcachedParams {
                keys: 200,
                gets: 100,
                skew: 1.1,
                seed: 0,
            })
            .module,
        ),
    ]
    .into_iter()
    .chain(
        nas::all(&nas::NasParams { shrink: 100 })
            .into_iter()
            .map(|s| (s.name.clone(), s.module)),
    )
    .collect()
}

#[test]
fn compiled_modules_always_verify_and_have_runtime_hooks() {
    for (name, mut m) in workload_modules() {
        let report = TrackFmCompiler::default().compile(&mut m, None);
        m.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            count_intrinsic(&m, Intrinsic::RuntimeInit),
            1,
            "{name}: exactly one runtime-init hook in main"
        );
        assert_eq!(
            count_intrinsic(&m, Intrinsic::Malloc),
            0,
            "{name}: libc malloc survived"
        );
        assert_eq!(
            count_intrinsic(&m, Intrinsic::Free),
            0,
            "{name}: libc free survived"
        );
        assert!(report.insts_after >= report.insts_before, "{name}");
    }
}

#[test]
fn chunk_begin_deref_end_are_balanced() {
    for (name, mut m) in workload_modules() {
        TrackFmCompiler::default().compile(&mut m, None);
        let begins = count_intrinsic(&m, Intrinsic::ChunkBegin);
        let ends = count_intrinsic(&m, Intrinsic::ChunkEnd);
        let derefs = count_intrinsic(&m, Intrinsic::ChunkDeref);
        // Every stream has a begin and at least one end (one per exit edge)
        // and at least one deref.
        if begins > 0 {
            assert!(ends >= begins, "{name}: {begins} begins vs {ends} ends");
            assert!(derefs >= begins, "{name}: streams without derefs");
        } else {
            assert_eq!(ends, 0, "{name}");
        }
    }
}

#[test]
fn chunk_begins_live_in_preheaders_outside_their_loops() {
    let mut m = stream::sum(&stream::StreamParams { elems: 4096 }).module;
    TrackFmCompiler::default().compile(&mut m, None);
    for (_, f) in m.functions() {
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        for v in f.live_insts() {
            if let InstKind::IntrinsicCall {
                intr: Intrinsic::ChunkBegin,
                ..
            } = f.kind(v)
            {
                let block = f.inst(v).block;
                // The begin must not sit inside any loop that contains a
                // deref using it (it would re-init every iteration).
                let deref_loops: Vec<_> = forest
                    .loops
                    .iter()
                    .filter(|lp| {
                        lp.blocks.iter().any(|&b| {
                            f.block_insts(b).iter().any(|&d| {
                                matches!(
                                    f.kind(d),
                                    InstKind::IntrinsicCall {
                                        intr: Intrinsic::ChunkDeref,
                                        args,
                                    } if args[0] == v
                                )
                            })
                        })
                    })
                    .collect();
                for lp in deref_loops {
                    assert!(!lp.contains(block), "chunk.begin inside the loop it serves");
                }
            }
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let build = || {
        let mut m = analytics::analytics(&analytics::AnalyticsParams {
            rows: 500,
            groups: 50,
        })
        .module;
        TrackFmCompiler::default().compile(&mut m, None);
        m.to_string()
    };
    assert_eq!(build(), build());
}

#[test]
fn guard_counts_scale_with_memory_instructions() {
    // §4.6: code growth is "roughly proportional to the number of memory
    // instructions". Build two programs differing only in access count.
    let prog = |accesses: usize| {
        let mut m = Module::new("p");
        let id = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let mut acc = b.iconst(Type::I64, 0);
            for k in 0..accesses {
                let addr = b.gep(p, acc, 8, k as i64);
                let x = b.load(Type::I64, addr);
                acc = b.binop(BinOp::Add, acc, x);
            }
            b.ret(Some(acc));
        }
        m.verify().unwrap();
        let report = TrackFmCompiler::default().compile(&mut m, None);
        report.total_guards()
    };
    assert_eq!(prog(5), 5);
    assert_eq!(prog(20), 20);
}

#[test]
fn o1_pipeline_composes_with_all_chunking_modes() {
    for mode in [
        ChunkingMode::Off,
        ChunkingMode::AllLoops,
        ChunkingMode::CostModel,
    ] {
        let mut m = nas::ft(&nas::NasParams { shrink: 100 }).module;
        let compiler = TrackFmCompiler::new(CompilerOptions {
            o1: true,
            chunking: mode,
            cost_model: CostModel::default(),
            ..Default::default()
        });
        let report = compiler.compile(&mut m, None);
        m.verify().unwrap();
        let o1 = report.o1.expect("o1 ran");
        assert!(o1.loads_eliminated > 0, "FT redundancy must be found");
    }
}

#[test]
fn recompiling_an_already_compiled_module_is_safe() {
    // Not a supported flow, but it must not corrupt the module: guards are
    // not stacked (Localized class), libc is already rewritten.
    let mut m = stream::sum(&stream::StreamParams { elems: 1024 }).module;
    let r1 = TrackFmCompiler::default().compile(&mut m, None);
    let guards_after_first = count_intrinsic(&m, Intrinsic::GuardRead);
    let r2 = TrackFmCompiler::default().compile(&mut m, None);
    m.verify().unwrap();
    assert_eq!(
        count_intrinsic(&m, Intrinsic::GuardRead),
        guards_after_first,
        "second compile must not add guards"
    );
    assert_eq!(count_intrinsic(&m, Intrinsic::RuntimeInit), 1);
    let _ = (r1, r2);
}
