//! Failover suite: shard crashes under replication.
//!
//! Four properties make crash failover trustworthy:
//!
//! 1. **Durability** — under `replicas(2)`, no acknowledged writeback is ever
//!    lost, whatever the crash schedule: a 200-seed sweep of scripted
//!    crash/restart windows ends every run with a clean audit.
//! 2. **Pay-for-use** — `replicas(1)` is the plain sharded backend, bit for
//!    bit: same cycles, same counters, same rendered report.
//! 3. **Determinism** — the same seed reproduces the identical failover
//!    story: downs, recoveries, re-replications, per-shard epochs.
//! 4. **Honest loss** — without replication a cold crash *does* lose
//!    un-resynced state, and the audit says so instead of hiding it.

use trackfm_suite::net::{BackendSpec, FaultPlan, LinkParams, PlacementPolicy};
use trackfm_suite::runtime::{FarMemory, FarMemoryConfig, ObjId};
use trackfm_suite::telemetry::EventKind;
use trackfm_suite::workloads::runner::{execute, execute_with_report, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

fn spec() -> trackfm_suite::workloads::spec::WorkloadSpec {
    stream::sum(&StreamParams { elems: 64 << 10 })
}

/// SplitMix64 — the same generator the fault fabric uses, re-derived here so
/// the sweep's crash schedules are themselves reproducible.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One seeded crash scenario against a raw `FarMemory`: write everything,
/// ack it with an evacuation, then ride a scripted crash window (reads,
/// writes, another evacuation) and finish past the restart. Returns the
/// runtime so callers can audit it.
fn crash_run(seed: u64, replicas: u32) -> FarMemory {
    let shards = 4u32;
    let sick = (mix(seed) % shards as u64) as u32;
    // Windows land inside the traffic phase below: start in [80K, 280K),
    // 60K-200K cycles long, warm or cold on a coin flip.
    let start = 80_000 + mix(seed ^ 1) % 200_000;
    let end = start + 60_000 + mix(seed ^ 2) % 140_000;
    let plan = if mix(seed ^ 3) & 1 == 0 {
        FaultPlan::none().with_cold_crash(start, end)
    } else {
        FaultPlan::none().with_crash(start, end)
    };
    let cfg = FarMemoryConfig {
        heap_size: 1 << 20,
        object_size: 4096,
        local_budget: 8 * 4096,
        link: LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    }
    .with_backend(
        BackendSpec::sharded(shards)
            .with_placement(PlacementPolicy::Interleave)
            .with_replicas(replicas)
            .with_fault_shard(sick),
    )
    .with_faults(plan);
    let mut fm = FarMemory::new(cfg);
    let p = fm.allocate(32 * 4096, 0).unwrap();
    let base = fm.obj_of_offset(p.offset());

    // Phase 1: dirty every object and acknowledge the writebacks.
    let mut now = 0u64;
    for k in 0..32u64 {
        now += fm.localize(ObjId(base.0 + k), true, now);
    }
    fm.evacuate_all(now);

    // Phase 2: mixed read/write traffic across the crash window, with a
    // second evacuation mid-stream so writebacks race the crash too.
    for k in 0..32u64 {
        let write = mix(seed ^ (k << 8)) & 1 == 0;
        now += fm.localize(ObjId(base.0 + k), write, now);
        if k == 16 {
            fm.evacuate_all(now);
        }
    }
    fm.evacuate_all(now);

    // Phase 3: land past the restart so recovery runs, then touch every
    // object once more — every acked version must still be readable.
    now = now.max(end + 1);
    for k in 0..32u64 {
        now += fm.localize(ObjId(base.0 + k), false, now);
    }
    fm
}

/// 200 seeded crash/restart schedules under `replicas(2)`: every run ends
/// with acknowledged data intact — zero lost writebacks, full redundancy.
#[test]
fn chaos_sweep_never_loses_an_acknowledged_writeback() {
    for seed in 0..200u64 {
        let fm = crash_run(seed, 2);
        let audit = fm.failover_audit().expect("replicated backend audits");
        assert!(
            audit.acked_keys > 0,
            "seed {seed}: nothing was acknowledged"
        );
        assert_eq!(audit.lost, 0, "seed {seed}: acked writeback lost");
        assert_eq!(
            audit.under_replicated, 0,
            "seed {seed}: redundancy not restored after recovery"
        );
        assert_eq!(fm.stats().lost_objects, 0, "seed {seed}");
    }
}

/// The same seed replays the identical failover story — every counter, every
/// per-shard epoch — across independent runs.
#[test]
fn same_seed_crash_schedule_is_bit_identical() {
    for seed in [7u64, 42, 1234] {
        let a = crash_run(seed, 2);
        let b = crash_run(seed, 2);
        assert_eq!(a.stats(), b.stats(), "seed {seed}");
        assert_eq!(a.transfer_stats(), b.transfer_stats(), "seed {seed}");
        assert_eq!(a.shard_snapshots(), b.shard_snapshots(), "seed {seed}");
    }
}

/// Without replication, a cold crash that lands before the redo ledger can
/// be replayed from a surviving copy *does* lose acknowledged state — and
/// the audit reports it instead of wedging or hiding it.
#[test]
fn unreplicated_cold_crash_loses_acknowledged_state_honestly() {
    let mut lost_somewhere = false;
    for seed in 0..40u64 {
        let fm = crash_run(seed, 1);
        let audit = fm.failover_audit().expect("crash plan activates the audit");
        // The run completed (no wedge) and the books balance: whatever was
        // lost is counted, never silently resurrected.
        assert_eq!(fm.stats().lost_objects, audit.lost, "seed {seed}");
        lost_somewhere |= audit.lost > 0;
    }
    assert!(
        lost_somewhere,
        "40 unreplicated cold/warm crashes never losing data means the \
         fault injector is not firing"
    );
}

/// A crash observed mid-traffic triggers live re-replication: the ledger is
/// drained onto substitute shards while the sick one is down, and recovery
/// re-syncs it — redundancy ends the run fully restored.
#[test]
fn observed_crash_re_replicates_and_recovers() {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 20,
        object_size: 4096,
        local_budget: 8 * 4096,
        link: LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    }
    .with_backend(
        BackendSpec::sharded(4)
            .with_placement(PlacementPolicy::Interleave)
            .with_replicas(2)
            .with_fault_shard(2),
    )
    .with_faults(FaultPlan::none().with_cold_crash(100_000, 2_000_000));
    let mut fm = FarMemory::new(cfg);
    let p = fm.allocate(32 * 4096, 0).unwrap();
    let base = fm.obj_of_offset(p.offset());
    let mut now = 0u64;
    for k in 0..32u64 {
        now += fm.localize(ObjId(base.0 + k), true, now);
    }
    fm.evacuate_all(now);

    // Inside the window: reads fail over, the down shard is drained.
    now = 150_000;
    for k in 0..32u64 {
        now += fm.localize(ObjId(base.0 + k), false, now);
    }
    assert_eq!(fm.stats().shard_downs, 1);
    assert!(
        fm.stats().re_replications > 0,
        "ledger must drain off shard 2"
    );

    // Past the restart: recovery rejoins the shard with a bumped epoch.
    now = 2_000_001;
    for k in 0..32u64 {
        now += fm.localize(ObjId(base.0 + k), false, now);
    }
    assert_eq!(fm.stats().shard_recoveries, 1);
    assert_eq!(fm.backend().shard_epoch(2), 1, "restart bumps the epoch");
    let audit = fm.failover_audit().unwrap();
    assert_eq!((audit.lost, audit.under_replicated), (0, 0));
}

/// `replicas(1)` is pay-for-use: a whole workload run is bit-identical to
/// the plain sharded backend — cycles, counters, ledgers, and the rendered
/// run report.
#[test]
fn replicas_one_is_bitwise_free() {
    let spec = spec();
    let plain = RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(4));
    let r1 = RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(4).with_replicas(1));
    let (a, rep_a) = execute_with_report(&spec, &plain);
    let (b, rep_b) = execute_with_report(&spec, &r1);
    assert_eq!(a.result.ret, b.result.ret);
    assert_eq!(
        a.result.stats, b.result.stats,
        "replicas(1) must cost nothing"
    );
    assert_eq!(a.result.runtime, b.result.runtime);
    assert_eq!(a.result.transfers, b.result.transfers);
    assert_eq!(a.result.shards, b.result.shards);
    assert_eq!(
        rep_a.render(),
        rep_b.render(),
        "even the report is identical"
    );
}

/// End to end through the workload runner: a replicated run rides out a cold
/// crash with the right answer, zero loss, and the full failover story in
/// telemetry and the run report.
#[test]
fn workload_survives_cold_crash_with_zero_loss() {
    let spec = spec();
    let clean = execute(&spec, &RunConfig::trackfm(0.25).with_shards(4));
    let cfg = RunConfig::trackfm(0.25)
        .with_backend(BackendSpec::sharded(4).with_replicas(2).with_fault_shard(1))
        .with_faults(FaultPlan::none().with_cold_crash(100_000, 400_000));
    let (out, rep) = execute_with_report(&spec, &cfg);

    assert_eq!(
        out.result.ret, clean.result.ret,
        "crash must not change the answer"
    );
    let rt = out.result.runtime.unwrap();
    assert_eq!(rt.lost_objects, 0, "R=2 must not lose acknowledged data");
    assert!(rt.shard_downs >= 1, "the crash must be observed");
    assert_eq!(
        rt.shard_recoveries, rt.shard_downs,
        "every down shard rejoins"
    );

    // Telemetry narrates the arc: down, recovering, up again.
    let snap = out.telemetry.as_ref().unwrap();
    assert!(snap.count(EventKind::ShardDown) >= 1);
    assert_eq!(
        snap.count(EventKind::ShardRecovering),
        snap.count(EventKind::ShardUp),
        "every recovery completes"
    );

    // The report publishes per-shard failover state and epochs.
    for s in 0..4 {
        let section = format!("shard{s}");
        assert!(
            rep.field(&section, "state").is_some(),
            "missing {section}.state"
        );
        assert!(
            rep.field(&section, "epoch").is_some(),
            "missing {section}.epoch"
        );
    }
    assert!(
        rep.field("shard1", "epoch").unwrap() >= 1,
        "shard 1 restarted"
    );

    // Same seed, same crash, same story — bit for bit.
    let again = execute(&spec, &cfg);
    assert_eq!(again.result.stats, out.result.stats);
    assert_eq!(again.result.runtime, out.result.runtime);
    assert_eq!(again.result.shards, out.result.shards);
}
