//! Sharding suite: routing invariants of the multi-node remote backend.
//!
//! Two properties make sharded runs trustworthy:
//!
//! 1. **Placement determinism** — shard assignment is a pure function of
//!    `(key, shard_count, policy)`: the same object set lands on the same
//!    shards run after run, so per-shard ledgers are reproducible.
//! 2. **Single-shard identity** — `Sharded` with one shard is the degenerate
//!    case of `SingleNode`, and a whole workload run costs exactly the same
//!    under either spelling: same cycles, same counters, same ledger.

use trackfm_suite::net::{build_backend, BackendSpec, FaultPlan, LinkParams, PlacementPolicy};
use trackfm_suite::workloads::runner::{execute, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

fn spec() -> trackfm_suite::workloads::spec::WorkloadSpec {
    stream::sum(&StreamParams { elems: 64 << 10 })
}

/// The same object set maps to the same shards across independently built
/// backends, for both placement policies and several shard counts.
#[test]
fn placement_is_reproducible_across_backend_instances() {
    for policy in [PlacementPolicy::Hash, PlacementPolicy::Interleave] {
        for shards in [2u32, 3, 4, 8] {
            let spec = BackendSpec::sharded(shards).with_placement(policy);
            let a = build_backend(LinkParams::tcp_25g(), spec, FaultPlan::none());
            let b = build_backend(LinkParams::tcp_25g(), spec, FaultPlan::none());
            for key in (0..4096u64).chain((0..64).map(|k| k << 40)) {
                let home = a.shard_of(key);
                assert!(home < shards as usize, "route must stay in range");
                assert_eq!(
                    home,
                    b.shard_of(key),
                    "{policy:?}/{shards}: key {key} moved between instances"
                );
            }
        }
    }
}

/// Identical runs produce identical per-shard ledgers: placement plus the
/// deterministic simulation pin every shard counter, not just aggregates.
#[test]
fn repeated_runs_agree_on_every_shard_ledger() {
    let spec = spec();
    let cfg = RunConfig::trackfm(0.25).with_shards(4);
    let a = execute(&spec, &cfg);
    let b = execute(&spec, &cfg);
    assert_eq!(a.result.shards.len(), 4);
    assert_eq!(a.result.shards, b.result.shards);
    assert_eq!(a.result.stats, b.result.stats);
    // Every shard took a share of a uniformly striding stream.
    for (i, snap) in a.result.shards.iter().enumerate() {
        assert!(snap.stats.fetches > 0, "shard {i} idle on a uniform stream");
    }
    // Shard ledgers sum to the aggregate.
    let total: u64 = a.result.shards.iter().map(|s| s.stats.bytes_fetched).sum();
    assert_eq!(a.result.transfers.unwrap().bytes_fetched, total);
}

/// A full workload run under `sharded(1)` is cost-identical to
/// `SingleNode`: same cycles, same runtime counters, same transfer ledger.
#[test]
fn one_shard_run_costs_exactly_what_single_node_does() {
    let spec = spec();
    let single = execute(&spec, &RunConfig::trackfm(0.25));
    let sharded = execute(
        &spec,
        &RunConfig::trackfm(0.25).with_backend(BackendSpec::sharded(1)),
    );
    assert_eq!(sharded.result.ret, single.result.ret);
    assert_eq!(sharded.result.stats, single.result.stats);
    assert_eq!(sharded.result.runtime, single.result.runtime);
    assert_eq!(sharded.result.transfers, single.result.transfers);
    // The only visible difference: a sharded backend publishes no per-shard
    // sections at count 1 either — it *is* the single-node world.
    assert!(sharded.result.shards.is_empty());
}

/// The identity holds under an active fault plan too: shard 0 keeps the
/// plan's seed verbatim, so `sharded(1)` replays the exact same fault
/// schedule as `SingleNode`.
#[test]
fn one_shard_identity_survives_fault_injection() {
    let spec = spec();
    let plan = FaultPlan::drops(0xC0FFEE, 50_000).with_stalls(20_000, 9_000);
    let single = execute(&spec, &RunConfig::trackfm(0.25).with_faults(plan));
    let sharded = execute(
        &spec,
        &RunConfig::trackfm(0.25)
            .with_faults(plan)
            .with_backend(BackendSpec::sharded(1)),
    );
    assert_eq!(sharded.result.stats, single.result.stats);
    assert_eq!(sharded.result.runtime, single.result.runtime);
    assert_eq!(sharded.result.transfers, single.result.transfers);
    assert!(
        single.result.runtime.unwrap().link_faults > 0,
        "plan must fire"
    );
}
