//! Parser/printer round-trip over *pipeline output*.
//!
//! The unit tests in `tfm-ir` round-trip hand-written modules; this suite
//! round-trips what the compiler actually emits — runtime-init hooks, guard
//! intrinsics, chunked loops with phi-carried custody, libc rewrites — for
//! every workload under several configurations, plus randomized programs.
//!
//! Exact text equality with the in-memory module is not required (the
//! printer names values by arena index and the pipeline's `insert_before`
//! renumbers), but print→parse must reach a fixpoint within a few rounds:
//! the reparsed module verifies, prints identically, and has the same
//! shape (functions, blocks, instructions). For random programs the
//! reparsed module must also *behave* identically under far memory.

use trackfm_suite::compiler::{ChunkingMode, CompilerOptions, CostModel, TrackFmCompiler};
use trackfm_suite::ir::{parse_module, Module};
use trackfm_suite::runtime::FarMemoryConfig;
use trackfm_suite::sim::{Machine, TrackFmMem};
use trackfm_suite::workloads::{analytics, hashmap, kmeans, memcached, nas, stream, SplitMix64};

/// Compiler configurations worth printing: each exercises different
/// pipeline output (guard shapes, chunk streams, O1 cleanups, elision).
fn configs() -> Vec<(&'static str, CompilerOptions)> {
    vec![
        ("default", CompilerOptions::default()),
        (
            "no-elide",
            CompilerOptions {
                elide_guards: false,
                ..Default::default()
            },
        ),
        (
            "no-chunking",
            CompilerOptions {
                chunking: ChunkingMode::Off,
                ..Default::default()
            },
        ),
        (
            "o1",
            CompilerOptions {
                o1: true,
                ..Default::default()
            },
        ),
    ]
}

/// Asserts print→parse cycles reach a fixpoint and preserve the module's
/// shape. Returns the first reparsed module for behavioural checks.
///
/// One round is not always enough: the parser materializes blocks in
/// first-*mention* order (a phi can mention a block before its label), the
/// printer labels blocks by arena order, so chunked-loop output may take a
/// couple of rounds for the two orders to agree. The loop bounds how many.
fn assert_roundtrip(tag: &str, compiled: &Module) -> Module {
    let text1 = compiled.to_string();
    let parsed = parse_module(&text1)
        .unwrap_or_else(|e| panic!("{tag}: pipeline output failed to parse: {e}"));
    parsed
        .verify()
        .unwrap_or_else(|e| panic!("{tag}: reparsed module failed to verify: {e}"));

    let mut text = parsed.to_string();
    let mut converged = false;
    for round in 0..6 {
        let m = parse_module(&text)
            .unwrap_or_else(|e| panic!("{tag}: reparse round {round} failed: {e}"));
        m.verify()
            .unwrap_or_else(|e| panic!("{tag}: round {round} failed to verify: {e}"));
        let next = m.to_string();
        if next == text {
            converged = true;
            break;
        }
        text = next;
    }
    assert!(converged, "{tag}: print/parse never reached a fixpoint");

    // Same shape: function names and the multiset of block sizes (the
    // parser lays blocks out in printed order, which may differ from the
    // original arena order).
    let shape = |m: &Module| {
        m.functions()
            .map(|(_, f)| {
                let mut sizes: Vec<usize> = f.blocks().map(|b| f.block_insts(b).len()).collect();
                sizes.sort_unstable();
                (f.name.clone(), sizes)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        shape(compiled),
        shape(&parsed),
        "{tag}: module shape changed"
    );
    parsed
}

#[test]
fn every_workload_pipeline_output_round_trips() {
    let specs = vec![
        stream::sum(&stream::StreamParams { elems: 4 << 10 }),
        stream::copy(&stream::StreamParams { elems: 4 << 10 }),
        stream::strided_sum(512, 16),
        kmeans::kmeans(&kmeans::KmeansParams {
            points: 256,
            dims: 4,
            k: 3,
            iters: 1,
        }),
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 256,
            lookups: 512,
            skew: 1.02,
            seed: 5,
        }),
        analytics::analytics(&analytics::AnalyticsParams {
            rows: 1024,
            groups: 64,
        }),
        memcached::memcached(&memcached::MemcachedParams {
            keys: 256,
            gets: 512,
            skew: 1.1,
            seed: 6,
        }),
    ]
    .into_iter()
    .chain(nas::all(&nas::NasParams { shrink: 100 }))
    .collect::<Vec<_>>();

    for spec in &specs {
        for (cname, opts) in configs() {
            let mut m = spec.module.clone();
            TrackFmCompiler::new(opts).compile(&mut m, None);
            assert_roundtrip(&format!("{}/{cname}", spec.name), &m);
        }
    }
}

#[test]
fn random_pipeline_output_round_trips_and_behaves() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0005);
    for case in 0..32 {
        let mut m = Module::new("rand");
        {
            use trackfm_suite::ir::{BinOp, FunctionBuilder, Signature, Type};
            let id = m.declare_function(
                "main",
                Signature::new(vec![Type::I64, Type::Ptr], Some(Type::I64)),
            );
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(1);
            let mut acc = b.param(0);
            for i in 0..rng.next_range(1, 9) {
                let idx = b.iconst(Type::I64, rng.next_range(0, 16));
                let addr = b.gep(p, idx, 8, 0);
                if rng.next_below(2) == 0 {
                    b.store(addr, acc);
                }
                let v = b.load(Type::I64, addr);
                let k = b.iconst(Type::I64, case * 8 + i + 1);
                let t = b.binop(BinOp::Mul, v, k);
                acc = b.binop(BinOp::Add, acc, t);
            }
            b.ret(Some(acc));
        }
        m.verify().unwrap();

        let a = rng.next_u64();
        let mut far = m.clone();
        TrackFmCompiler::default().compile(&mut far, None);
        let parsed = assert_roundtrip(&format!("rand{case}"), &far);

        // The reparsed pipeline output computes the same thing the
        // in-memory pipeline output computes, under far-memory pressure.
        assert_eq!(
            run_far(&far, a),
            run_far(&parsed, a),
            "case {case}: reparse changed behaviour"
        );
    }
}

fn run_far(m: &Module, a: u64) -> u64 {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 16,
        object_size: 64,
        local_budget: 256,
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(m, mem, CostModel::default(), 1 << 16);
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(true);
    machine.run("main", &[a, scratch]).expect("clean run").ret
}
