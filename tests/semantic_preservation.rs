//! The central correctness property of a far-memory compiler: the
//! transformed program, on any memory system, at any object size, under any
//! memory pressure, computes exactly what the original program computes.
//!
//! Each workload spec carries a host-computed `expected` checksum; the
//! runner asserts it on every execution, so these tests "only" need to
//! exercise the configuration space. Property-based tests randomize the
//! parameters.

use trackfm_suite::compiler::ChunkingMode;
use trackfm_suite::workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};
use trackfm_suite::workloads::{analytics, hashmap, kmeans, memcached, nas, stream, SplitMix64};

fn all_systems(frac: f64, object_size: u64) -> Vec<RunConfig> {
    vec![
        RunConfig::local(),
        RunConfig::fastswap(frac),
        RunConfig::trackfm(frac).with_object_size(object_size),
        RunConfig::aifm(frac).with_object_size(object_size),
    ]
}

#[test]
fn every_workload_preserves_semantics_on_every_system() {
    let specs = vec![
        stream::sum(&stream::StreamParams { elems: 32 << 10 }),
        stream::copy(&stream::StreamParams { elems: 32 << 10 }),
        stream::strided_sum(2_000, 64),
        kmeans::kmeans(&kmeans::KmeansParams {
            points: 1_500,
            dims: 8,
            k: 4,
            iters: 2,
        }),
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 3_000,
            lookups: 6_000,
            skew: 1.02,
            seed: 5,
        }),
        analytics::analytics(&analytics::AnalyticsParams {
            rows: 8_000,
            groups: 600,
        }),
        memcached::memcached(&memcached::MemcachedParams {
            keys: 2_000,
            gets: 4_000,
            skew: 1.1,
            seed: 6,
        }),
    ]
    .into_iter()
    .chain(nas::all(&nas::NasParams { shrink: 25 }))
    .collect::<Vec<_>>();

    for spec in &specs {
        for cfg in all_systems(0.3, 1024) {
            // `execute` panics if the checksum deviates from the host oracle.
            let out = execute(spec, &cfg);
            assert!(
                out.result.stats.instructions > 0,
                "{} ran nothing",
                spec.name
            );
        }
    }
}

#[test]
fn all_chunking_modes_preserve_semantics() {
    let spec = stream::copy(&stream::StreamParams { elems: 32 << 10 });
    let profile = collect_profile(&spec);
    for mode in [
        ChunkingMode::Off,
        ChunkingMode::AllLoops,
        ChunkingMode::CostModel,
    ] {
        for o1 in [false, true] {
            let mut cfg = RunConfig::trackfm(0.25);
            cfg.compiler.chunking = mode;
            cfg.compiler.o1 = o1;
            execute_with_profile(&spec, &cfg, Some(&profile));
        }
    }
}

/// The O1 pipeline (mem2reg + scalar passes) on the alloca-heavy workloads:
/// every checksum must survive SSA promotion, and the promotion must
/// actually fire.
#[test]
fn o1_preserves_semantics_on_alloca_heavy_workloads() {
    let specs = vec![
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 3_000,
            lookups: 6_000,
            skew: 1.02,
            seed: 5,
        }),
        analytics::analytics(&analytics::AnalyticsParams {
            rows: 8_000,
            groups: 600,
        }),
        kmeans::kmeans(&kmeans::KmeansParams {
            points: 1_000,
            dims: 6,
            k: 3,
            iters: 2,
        }),
    ]
    .into_iter()
    .chain(nas::all(&nas::NasParams { shrink: 25 }))
    .collect::<Vec<_>>();
    let mut promoted_total = 0;
    for spec in &specs {
        let mut cfg = RunConfig::trackfm(0.3);
        cfg.compiler.o1 = true;
        let out = execute(spec, &cfg); // checksum asserted inside
        promoted_total += out
            .report
            .unwrap()
            .o1
            .map(|o| o.promoted_slots)
            .unwrap_or(0);
        // Also under plain local memory for a second opinion.
        let mut lcfg = RunConfig::local();
        lcfg.compiler.o1 = true;
        execute(spec, &lcfg);
    }
    assert!(
        promoted_total >= 5,
        "mem2reg should fire broadly: {promoted_total}"
    );
}

/// Random element counts, local fractions and object sizes: the stream
/// checksum must hold everywhere (the runner asserts internally).
#[test]
fn stream_sum_is_exact_under_random_pressure() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0003);
    for _ in 0..12 {
        let elems = rng.next_range(1_000, 39_999) as usize;
        let frac = 0.05 + rng.next_f64() * 0.95;
        let os_shift = rng.next_range(6, 12) as u32;
        let spec = stream::sum(&stream::StreamParams { elems });
        let object_size = 1u64 << os_shift;
        for cfg in all_systems(frac, object_size) {
            execute(&spec, &cfg);
        }
    }
}

/// Zipfian hashmap lookups with random skew/seed under random object
/// sizes: values read through far memory must match the host oracle.
#[test]
fn hashmap_lookups_are_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0004);
    for _ in 0..12 {
        let keys = rng.next_range(500, 3_999) as usize;
        let skew = 1.01 + rng.next_f64() * 0.39;
        let seed = rng.next_u64();
        let frac = 0.1 + rng.next_f64() * 0.9;
        let spec = hashmap::hashmap(&hashmap::HashmapParams {
            keys,
            lookups: keys * 2,
            skew,
            seed,
        });
        for cfg in all_systems(frac, 256) {
            execute(&spec, &cfg);
        }
    }
}

/// k-means (float-heavy, nested loops) with random shape: bit-exact
/// across systems and chunking policies.
#[test]
fn kmeans_is_bit_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0005);
    for _ in 0..12 {
        let points = rng.next_range(200, 1_499) as usize;
        let dims = rng.next_range(2, 9) as usize;
        let k = rng.next_range(2, 5) as usize;
        let spec = kmeans::kmeans(&kmeans::KmeansParams {
            points,
            dims,
            k,
            iters: 2,
        });
        execute(&spec, &RunConfig::local());
        let mut all_loops = RunConfig::trackfm(0.4);
        all_loops.compiler.chunking = ChunkingMode::AllLoops;
        execute(&spec, &all_loops);
        execute(&spec, &RunConfig::fastswap(0.4));
    }
}
