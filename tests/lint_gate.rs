//! CI gate for the `tfm-lint` soundness check.
//!
//! The pipeline runs the lint after every compile (and panics on errors),
//! but this suite is the explicit gate: every workload, example-shaped
//! program, and compiler configuration must produce a module on which
//! `lint_module` reports **zero** may-heap accesses without guard custody.
//! A deliberately tampered module proves the lint is not vacuous.

use trackfm_suite::compiler::{lint_module, ChunkingMode, CompilerOptions, TrackFmCompiler};
use trackfm_suite::ir::{
    BinOp, CastOp, FunctionBuilder, InstKind, Intrinsic, Module, Signature, Type,
};
use trackfm_suite::workloads::{analytics, hashmap, kmeans, memcached, nas, stream};

fn configs() -> Vec<(&'static str, CompilerOptions)> {
    vec![
        ("default", CompilerOptions::default()),
        (
            "no-elide",
            CompilerOptions {
                elide_guards: false,
                ..Default::default()
            },
        ),
        (
            "no-chunking",
            CompilerOptions {
                chunking: ChunkingMode::Off,
                ..Default::default()
            },
        ),
        (
            "o1",
            CompilerOptions {
                o1: true,
                ..Default::default()
            },
        ),
    ]
}

fn assert_lint_clean(tag: &str, module: &Module) {
    let errors = lint_module(module);
    assert!(
        errors.is_empty(),
        "{tag}: tfm-lint found {} uncovered accesses:\n{}",
        errors.len(),
        errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_is_clean_on_every_workload_under_every_config() {
    let specs = vec![
        stream::sum(&stream::StreamParams { elems: 4 << 10 }),
        stream::copy(&stream::StreamParams { elems: 4 << 10 }),
        stream::strided_sum(512, 16),
        kmeans::kmeans(&kmeans::KmeansParams {
            points: 256,
            dims: 4,
            k: 3,
            iters: 1,
        }),
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 256,
            lookups: 512,
            skew: 1.02,
            seed: 5,
        }),
        analytics::analytics(&analytics::AnalyticsParams {
            rows: 1024,
            groups: 64,
        }),
        memcached::memcached(&memcached::MemcachedParams {
            keys: 256,
            gets: 512,
            skew: 1.1,
            seed: 6,
        }),
    ]
    .into_iter()
    .chain(nas::all(&nas::NasParams { shrink: 100 }))
    .collect::<Vec<_>>();

    for spec in &specs {
        for (cname, opts) in configs() {
            let mut m = spec.module.clone();
            TrackFmCompiler::new(opts).compile(&mut m, None);
            assert_lint_clean(&format!("{}/{cname}", spec.name), &m);
        }
    }
}

/// The quickstart example's Listing-1 sum loop — the README's first
/// contact with the compiler must survive the gate too.
fn quickstart_module() -> Module {
    let mut module = Module::new("quickstart");
    let main_fn = module.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(module.function_mut(main_fn));
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(Type::I64, 0);
        let sum_slot = b.alloca(8, 8);
        b.store(sum_slot, zero);
        b.counted_loop(zero, n, 1, |b, i| {
            let addr = b.gep(arr, i, 4, 0);
            let x = b.load(Type::I32, addr);
            let x64 = b.cast(CastOp::Sext, x, Type::I64);
            let s = b.load(Type::I64, sum_slot);
            let s2 = b.binop(BinOp::Add, s, x64);
            b.store(sum_slot, s2);
        });
        let out = b.load(Type::I64, sum_slot);
        b.ret(Some(out));
    }
    module.verify().expect("well-formed input");
    module
}

#[test]
fn lint_is_clean_on_example_shaped_programs() {
    for (cname, opts) in configs() {
        let mut m = quickstart_module();
        TrackFmCompiler::new(opts).compile(&mut m, None);
        assert_lint_clean(&format!("quickstart/{cname}"), &m);
    }
}

/// Deleting one guard from otherwise-sound pipeline output must trip the
/// lint — the gate actually gates.
#[test]
fn lint_catches_a_deleted_guard() {
    let mut m = quickstart_module();
    TrackFmCompiler::new(CompilerOptions {
        chunking: ChunkingMode::Off, // plain guards, no chunk custody
        ..Default::default()
    })
    .compile(&mut m, None);
    assert_lint_clean("pre-tamper", &m);

    // Strip the first guard: route its uses to the raw pointer.
    let fid = m.function_ids().next().unwrap();
    let f = m.function_mut(fid);
    let guard = f
        .live_insts()
        .into_iter()
        .find(|&v| {
            matches!(
                f.kind(v),
                InstKind::IntrinsicCall {
                    intr: Intrinsic::GuardRead | Intrinsic::GuardWrite,
                    ..
                }
            )
        })
        .expect("pipeline output has a guard");
    let raw = match f.kind(guard) {
        InstKind::IntrinsicCall { args, .. } => args[0],
        _ => unreachable!(),
    };
    f.replace_all_uses(guard, raw);
    f.remove_inst(guard);

    let errors = lint_module(&m);
    assert!(
        !errors.is_empty(),
        "lint must flag the access whose guard was deleted"
    );
    assert!(errors
        .iter()
        .any(|e| e.to_string().contains("never passed through a guard")));
}
