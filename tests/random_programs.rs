//! Randomized compiler-correctness properties.
//!
//! A generator builds arbitrary (but well-formed) programs — straight-line
//! integer arithmetic, a diamond branch, loads/stores through a scratch
//! buffer — then checks, for every generated program:
//!
//! * the verifier accepts it;
//! * `print → parse → print` is a fixpoint and preserves behaviour;
//! * the O1 pipeline (fold/CSE/RLE/LICM/simplify-cfg/DCE) preserves
//!   behaviour;
//! * the full TrackFM transformation preserves behaviour under far memory.

use trackfm_suite::compiler::{CostModel, TrackFmCompiler};
use trackfm_suite::ir::{
    parse_module, BinOp, CmpOp, FunctionBuilder, Module, Signature, Type, Value,
};
use trackfm_suite::runtime::FarMemoryConfig;
use trackfm_suite::sim::{LocalMem, Machine, TrackFmMem};
use trackfm_suite::workloads::SplitMix64;

/// One generated operation.
#[derive(Clone, Debug)]
enum Op {
    Bin(u8, u8, u8),
    Cmp(u8, u8, u8),
    StoreLoad(u8, u8), // store value, heap slot index
    StackSlot(u8, u8), // store value, stack slot index (mem2reg fodder)
}

fn random_op(rng: &mut SplitMix64) -> Op {
    let b8 = |rng: &mut SplitMix64| rng.next_u64() as u8;
    match rng.next_below(4) {
        0 => Op::Bin(b8(rng), b8(rng), b8(rng)),
        1 => Op::Cmp(b8(rng), b8(rng), b8(rng)),
        2 => Op::StoreLoad(b8(rng), b8(rng)),
        _ => Op::StackSlot(b8(rng), b8(rng)),
    }
}

const BINOPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Lshr,
    BinOp::Ashr,
];
const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Slt,
    CmpOp::Sle,
    CmpOp::Ugt,
    CmpOp::Uge,
];

/// Builds a program from the op list: computes over two params plus a
/// 16-slot heap scratch buffer, ends with a diamond on the running value.
fn build(ops: &[Op], seed: i64) -> Module {
    let mut m = Module::new("rand");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::I64, Type::I64, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let scratch = b.param(2);
        let slots: Vec<Value> = (0..4).map(|_| b.alloca(8, 8)).collect();
        let mut vals: Vec<Value> = vec![b.param(0), b.param(1)];
        let c = b.iconst(Type::I64, seed);
        for &sl in &slots {
            b.store(sl, c);
        }
        vals.push(c);
        for op in ops {
            let pick = |n: u8, len: usize| n as usize % len;
            let v = match op {
                Op::Bin(o, x, y) => {
                    let a = vals[pick(*x, vals.len())];
                    let bb = vals[pick(*y, vals.len())];
                    b.binop(BINOPS[pick(*o, BINOPS.len())], a, bb)
                }
                Op::Cmp(o, x, y) => {
                    let a = vals[pick(*x, vals.len())];
                    let bb = vals[pick(*y, vals.len())];
                    b.icmp(CMPS[pick(*o, CMPS.len())], a, bb)
                }
                Op::StoreLoad(x, s) => {
                    let v = vals[pick(*x, vals.len())];
                    let slot = b.iconst(Type::I64, (s % 16) as i64);
                    let addr = b.gep(scratch, slot, 8, 0);
                    b.store(addr, v);
                    b.load(Type::I64, addr)
                }
                Op::StackSlot(x, s) => {
                    let v = vals[pick(*x, vals.len())];
                    let sl = slots[(*s % 4) as usize];
                    b.store(sl, v);
                    b.load(Type::I64, sl)
                }
            };
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        // Diamond on the last value.
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let zero = b.iconst(Type::I64, 0);
        let cnd = b.icmp(CmpOp::Sgt, last, zero);
        b.cond_br(cnd, t, e);
        b.switch_to_block(t);
        let tv = b.binop(BinOp::Xor, last, vals[0]);
        b.br(j);
        b.switch_to_block(e);
        let ev = b.binop(BinOp::Add, last, vals[1]);
        b.br(j);
        b.switch_to_block(j);
        let phi = b.phi(Type::I64, &[(t, tv), (e, ev)]);
        b.ret(Some(phi));
    }
    m
}

fn run_local(m: &Module, a: u64, b: u64) -> u64 {
    let mut machine = Machine::new(m, LocalMem::new(1 << 16), CostModel::default(), 1 << 16);
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(false);
    machine
        .run("main", &[a, b, scratch])
        .expect("clean run")
        .ret
}

fn run_trackfm(m: &Module, a: u64, b: u64) -> u64 {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 16,
        object_size: 64,
        local_budget: 256, // heavy pressure: 4 objects
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(m, mem, CostModel::default(), 1 << 16);
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(true); // cold: everything remote at t=0
    machine
        .run("main", &[a, b, scratch])
        .expect("clean run")
        .ret
}

#[test]
fn random_programs_verify_roundtrip_optimize_and_remote() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0001);
    for case in 0..64 {
        let ops: Vec<Op> = (0..rng.next_range(1, 39))
            .map(|_| random_op(&mut rng))
            .collect();
        let seed = rng.next_u64() as i64;
        let a = rng.next_u64();
        let b = rng.next_u64();
        let m = build(&ops, seed);
        assert!(
            m.verify().is_ok(),
            "case {case}: generated program must verify"
        );
        let want = run_local(&m, a, b);

        // Parser round-trip preserves behaviour and is a print fixpoint.
        let text1 = m.to_string();
        let parsed = parse_module(&text1).expect("printer output parses");
        parsed.verify().expect("parsed module verifies");
        assert_eq!(run_local(&parsed, a, b), want);
        let text2 = parsed.to_string();
        let reparsed = parse_module(&text2).expect("reparse");
        assert_eq!(reparsed.to_string(), text2, "print is a parse fixpoint");

        // O1 preserves behaviour.
        let mut opt = m.clone();
        trackfm_suite::compiler::passes::o1::run(&mut opt);
        opt.verify().expect("optimized module verifies");
        assert_eq!(run_local(&opt, a, b), want, "O1 changed behaviour");

        // The far-memory transformation preserves behaviour under pressure.
        let mut far = m.clone();
        TrackFmCompiler::default().compile(&mut far, None);
        assert_eq!(run_trackfm(&far, a, b), want, "TrackFM changed behaviour");

        // And O1 + TrackFM together.
        let mut both = m.clone();
        let compiler = TrackFmCompiler::new(trackfm_suite::compiler::CompilerOptions {
            o1: true,
            ..Default::default()
        });
        compiler.compile(&mut both, None);
        assert_eq!(
            run_trackfm(&both, a, b),
            want,
            "O1+TrackFM changed behaviour"
        );
    }
}

/// [`run_trackfm`], with the guard sanitizer armed: any dereference of a
/// heap pointer without live guard custody traps instead of executing.
/// Returns the result and the simulated cycle count.
fn run_trackfm_sanitized(m: &Module, a: u64, b: u64) -> (u64, u64) {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 16,
        object_size: 64,
        local_budget: 256,
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(m, mem, CostModel::default(), 1 << 16);
    machine.enable_guard_sanitizer();
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(true);
    let r = machine
        .run("main", &[a, b, scratch])
        .expect("sanitizer-clean run");
    (r.ret, r.stats.cycles)
}

/// The static soundness lint and the dynamic guard sanitizer must agree on
/// pipeline output: over a few hundred seeded programs, `tfm-lint` reports
/// zero errors and the sanitizer reports zero traps — with redundant-guard
/// elimination both off and on. Elision must also never change the result
/// or increase simulated cycles, and must fire somewhere in the corpus.
#[test]
fn lint_and_sanitizer_agree_on_random_corpus() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0004);
    let mut total_eliminated = 0usize;
    for case in 0..200 {
        let ops: Vec<Op> = (0..rng.next_range(1, 31))
            .map(|_| random_op(&mut rng))
            .collect();
        let seed = rng.next_u64() as i64;
        let a = rng.next_u64();
        let b = rng.next_u64();
        let m = build(&ops, seed);
        let want = run_local(&m, a, b);

        let mut cycles = [0u64; 2];
        for elide in [false, true] {
            let mut far = m.clone();
            let compiler = TrackFmCompiler::new(trackfm_suite::compiler::CompilerOptions {
                elide_guards: elide,
                ..Default::default()
            });
            let report = compiler.compile(&mut far, None);
            // Static: the pipeline's own lint stage already ran (it panics
            // on errors); check the exported entry point agrees.
            assert!(
                trackfm_suite::compiler::lint_module(&far).is_empty(),
                "case {case} (elide={elide}): lint must pass on pipeline output"
            );
            // Dynamic: the sanitizer sees every access of the taken path.
            let (got, cyc) = run_trackfm_sanitized(&far, a, b);
            assert_eq!(got, want, "case {case} (elide={elide}): wrong result");
            cycles[elide as usize] = cyc;
            if elide {
                total_eliminated += report.elision.eliminated;
            }
        }
        assert!(
            cycles[1] <= cycles[0],
            "case {case}: elision increased cycles ({} -> {})",
            cycles[0],
            cycles[1]
        );
    }
    assert!(
        total_eliminated > 0,
        "the corpus should contain redundant guards for elision to fold"
    );
}

/// One operation of the *interprocedural* generator: the base ops plus
/// calls into helper functions and constant-trip loops over an invariant
/// far-memory slot — the shapes the interprocedural custody analysis and
/// loop-invariant guard motion exist for.
#[derive(Clone, Debug)]
enum ExtOp {
    Base(Op),
    /// Call the pure arithmetic helper (custody-transparent).
    CallPure(u8),
    /// Call the RMW helper on a scratch slot (raw pointer-param deref).
    CallBump(u8, u8),
    /// Call the stack-only RMW helper on an alloca slot: interprocedural
    /// classification proves the pointer param provably-stack, so the
    /// helper compiles guard-free.
    CallBumpStack(u8, u8),
    /// Call the allocating helper (custody-killing).
    CallKiller(u8),
    /// Constant-trip loop RMW'ing one invariant scratch slot; the second
    /// payload bit decides whether the body also calls the pure helper.
    InvLoop(u8, u8, u8),
}

fn random_ext_op(rng: &mut SplitMix64) -> ExtOp {
    let b8 = |rng: &mut SplitMix64| rng.next_u64() as u8;
    match rng.next_below(9) {
        0..=3 => ExtOp::Base(random_op(rng)),
        4 => ExtOp::CallPure(b8(rng)),
        5 => ExtOp::CallBump(b8(rng), b8(rng)),
        6 => ExtOp::CallBumpStack(b8(rng), b8(rng)),
        7 => ExtOp::CallKiller(b8(rng)),
        _ => ExtOp::InvLoop(b8(rng), b8(rng), b8(rng)),
    }
}

/// [`build`]'s multi-function sibling: `main` plus a pure helper, an
/// RMW-on-pointer-param helper, and an allocating (custody-killing)
/// helper. Behaviour stays pointer-value-free and deterministic.
fn build_interproc(ops: &[ExtOp], seed: i64) -> Module {
    let mut m = Module::new("rand_ip");

    // Pure: f(x) = (x ^ seed) + (x << 1). Custody-transparent.
    let pure_fn = m.declare_function("pure", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(pure_fn));
        let x = b.param(0);
        let c = b.iconst(Type::I64, seed);
        let one = b.iconst(Type::I64, 1);
        let t = b.binop(BinOp::Xor, x, c);
        let s = b.binop(BinOp::Shl, x, one);
        let r = b.binop(BinOp::Add, t, s);
        b.ret(Some(r));
    }

    // Bump: v = *p; *p = v + x; return v. Raw deref of the pointer param —
    // classified (and guarded) from its call sites.
    let bump_fn = m.declare_function(
        "bump",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(bump_fn));
        let p = b.param(0);
        let x = b.param(1);
        let v = b.load(Type::I64, p);
        let v2 = b.binop(BinOp::Add, v, x);
        b.store(p, v2);
        b.ret(Some(v));
    }

    // Stack-only bump: body identical to `bump`, but every call site
    // passes an alloca — interprocedurally its param is provably Stack.
    let bump_stack_fn = m.declare_function(
        "bump_stack",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(bump_stack_fn));
        let p = b.param(0);
        let x = b.param(1);
        let v = b.load(Type::I64, p);
        let v2 = b.binop(BinOp::Add, v, x);
        b.store(p, v2);
        b.ret(Some(v));
    }

    // Killer: allocates (and frees) — may trigger evacuation, so custody
    // must not survive calls to it.
    let killer_fn = m.declare_function("killer", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(killer_fn));
        let x = b.param(0);
        let q = b.malloc_const(16);
        b.store(q, x);
        let v = b.load(Type::I64, q);
        b.intrinsic(trackfm_suite::ir::Intrinsic::Free, vec![q]);
        b.ret(Some(v));
    }

    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::I64, Type::I64, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let scratch = b.param(2);
        let mut vals: Vec<Value> = vec![b.param(0), b.param(1)];
        let c = b.iconst(Type::I64, seed);
        let stack_slots: Vec<Value> = (0..4).map(|_| b.alloca(8, 8)).collect();
        for &sl in &stack_slots {
            b.store(sl, c);
        }
        vals.push(c);
        let pick = |vals: &[Value], n: u8| vals[n as usize % vals.len()];
        for op in ops {
            let v = match op {
                ExtOp::Base(op) => match op {
                    Op::Bin(o, x, y) => {
                        let a = pick(&vals, *x);
                        let bb = pick(&vals, *y);
                        b.binop(BINOPS[*o as usize % BINOPS.len()], a, bb)
                    }
                    Op::Cmp(o, x, y) => {
                        let a = pick(&vals, *x);
                        let bb = pick(&vals, *y);
                        b.icmp(CMPS[*o as usize % CMPS.len()], a, bb)
                    }
                    Op::StoreLoad(x, s) | Op::StackSlot(x, s) => {
                        let v = pick(&vals, *x);
                        let slot = b.iconst(Type::I64, (s % 16) as i64);
                        let addr = b.gep(scratch, slot, 8, 0);
                        b.store(addr, v);
                        b.load(Type::I64, addr)
                    }
                },
                ExtOp::CallPure(x) => {
                    let a = pick(&vals, *x);
                    b.call(pure_fn, vec![a], Some(Type::I64))
                }
                ExtOp::CallBump(x, s) => {
                    let a = pick(&vals, *x);
                    let slot = b.iconst(Type::I64, (s % 16) as i64);
                    let addr = b.gep(scratch, slot, 8, 0);
                    b.call(bump_fn, vec![addr, a], Some(Type::I64))
                }
                ExtOp::CallBumpStack(x, s) => {
                    let a = pick(&vals, *x);
                    let sl = stack_slots[(s % 4) as usize];
                    b.call(bump_stack_fn, vec![sl, a], Some(Type::I64))
                }
                ExtOp::CallKiller(x) => {
                    let a = pick(&vals, *x);
                    b.call(killer_fn, vec![a], Some(Type::I64))
                }
                ExtOp::InvLoop(x, s, n) => {
                    let addend = pick(&vals, *x);
                    let slot = b.iconst(Type::I64, (s % 16) as i64);
                    let addr = b.gep(scratch, slot, 8, 0);
                    let zero = b.iconst(Type::I64, 0);
                    let trip = b.iconst(Type::I64, (n % 5 + 1) as i64);
                    let with_call = n & 0x80 != 0;
                    b.counted_loop(zero, trip, 1, |b, _i| {
                        let t = b.load(Type::I64, addr);
                        let inc = if with_call {
                            b.call(pure_fn, vec![addend], Some(Type::I64))
                        } else {
                            addend
                        };
                        let t2 = b.binop(BinOp::Add, t, inc);
                        b.store(addr, t2);
                    });
                    b.load(Type::I64, addr)
                }
            };
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        b.ret(Some(last));
    }
    m
}

/// The all-combos gate for the interprocedural layer. Over 200 seeded
/// multi-function programs, every on/off combination of
/// `{interproc, call_aware_kills, guard_motion}`:
///
/// * passes the (always fully interprocedural) static lint;
/// * runs clean under the dynamic guard sanitizer;
/// * returns the bit-identical result of a [`LocalMem`] oracle run;
/// * never simulates *more* cycles than the all-off configuration.
///
/// The transforms must also demonstrably fire somewhere in the corpus.
#[test]
fn all_interproc_flag_combos_agree_on_random_corpus() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0008);
    let mut total_hoisted = 0usize;
    let mut interproc_elided_guards = false;
    let mut call_aware_extra_elision = false;
    for case in 0..200 {
        let ops: Vec<ExtOp> = (0..rng.next_range(1, 25))
            .map(|_| random_ext_op(&mut rng))
            .collect();
        let seed = rng.next_u64() as i64;
        let a = rng.next_u64();
        let b = rng.next_u64();
        let m = build_interproc(&ops, seed);
        assert!(m.verify().is_ok(), "case {case}: program must verify");
        let want = run_local(&m, a, b);

        let mut all_off_cycles = 0u64;
        let mut guards_by_combo = [0usize; 8];
        let mut elided_by_combo = [0usize; 8];
        for combo in 0..8u8 {
            let opts = trackfm_suite::compiler::CompilerOptions {
                interproc: combo & 1 != 0,
                call_aware_kills: combo & 2 != 0,
                guard_motion: combo & 4 != 0,
                ..Default::default()
            };
            let mut far = m.clone();
            let report = TrackFmCompiler::new(opts).compile(&mut far, None);
            // Static: full-precision lint, regardless of transform flags.
            assert!(
                trackfm_suite::compiler::lint_module(&far).is_empty(),
                "case {case} combo {combo:03b}: lint must pass"
            );
            // Dynamic: the sanitizer checks custody on the taken path.
            let (got, cyc) = run_trackfm_sanitized(&far, a, b);
            assert_eq!(
                got, want,
                "case {case} combo {combo:03b}: result differs from the LocalMem oracle"
            );
            if combo == 0 {
                all_off_cycles = cyc;
            } else {
                assert!(
                    cyc <= all_off_cycles,
                    "case {case} combo {combo:03b}: cycles increased \
                     ({all_off_cycles} -> {cyc})"
                );
            }
            total_hoisted += report.motion.hoisted;
            guards_by_combo[combo as usize] = report.total_guards();
            elided_by_combo[combo as usize] = report.elision.eliminated;
        }
        if guards_by_combo[1] < guards_by_combo[0] {
            interproc_elided_guards = true;
        }
        if elided_by_combo[2] > elided_by_combo[0] {
            call_aware_extra_elision = true;
        }
    }
    assert!(total_hoisted > 0, "guard motion must fire in the corpus");
    assert!(
        interproc_elided_guards,
        "interproc classification must skip guards somewhere in the corpus"
    );
    assert!(
        call_aware_extra_elision,
        "call-aware kills must enable extra elision somewhere in the corpus"
    );
}

/// Both checkers reject the same broken program: a raw dereference of a
/// heap pointer that never passed through a guard is a static lint error
/// *and* a dynamic sanitizer trap.
#[test]
fn lint_and_sanitizer_both_reject_unguarded_access() {
    use trackfm_suite::sim::Trap;

    let mut m = Module::new("bad");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::I64, Type::I64, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let p = b.param(2);
        let v = b.load(Type::I64, p); // unknown-provenance deref, no guard
        b.ret(Some(v));
    }
    m.verify().unwrap();

    let errors = trackfm_suite::compiler::lint_module(&m);
    assert_eq!(errors.len(), 1, "lint must flag the raw deref: {errors:?}");
    assert!(errors[0]
        .to_string()
        .contains("never passed through a guard"));

    let cfg = FarMemoryConfig {
        heap_size: 1 << 16,
        object_size: 64,
        local_budget: 256,
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(&m, mem, CostModel::default(), 1 << 16);
    machine.enable_guard_sanitizer();
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(false);
    match machine.run("main", &[0, 0, scratch]) {
        Err(Trap::UnguardedAccess { .. }) => {}
        other => panic!("sanitizer should trap the unguarded deref, got {other:?}"),
    }
}

/// Runs `m` under far memory on the given engine, returning the outcome
/// and the machine's final clock (observable even when the run traps —
/// that's what makes the fuel-lockstep sweep below possible).
fn exec_far_engine(
    m: &Module,
    engine: trackfm_suite::sim::ExecEngine,
    a: u64,
    b: u64,
    sanitize: bool,
    fuel: u64,
) -> (
    Result<trackfm_suite::sim::RunResult, trackfm_suite::sim::Trap>,
    u64,
) {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 16,
        object_size: 64,
        local_budget: 256,
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(m, mem, CostModel::default(), 1 << 16);
    machine.set_engine(engine);
    machine.set_fuel(fuel);
    if sanitize {
        machine.enable_guard_sanitizer();
    }
    let scratch = machine.setup_alloc(128);
    machine.setup_write_u64s(scratch, &[0; 16]);
    machine.finish_setup(true);
    let r = machine.run("main", &[a, b, scratch]);
    let clock = machine.clock();
    (r, clock)
}

/// Asserts the two engines produced bit-identical outcomes: same
/// result-or-trap (including trap positions), same full [`ExecStats`]
/// (cycles, instructions, loads/stores, every guard counter, stalls), and
/// the same final clock.
#[allow(clippy::type_complexity)]
fn assert_engines_identical(
    ctx: &str,
    tw: (
        Result<trackfm_suite::sim::RunResult, trackfm_suite::sim::Trap>,
        u64,
    ),
    bc: (
        Result<trackfm_suite::sim::RunResult, trackfm_suite::sim::Trap>,
        u64,
    ),
) {
    match (&tw.0, &bc.0) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.ret, y.ret, "{ctx}: results differ");
            assert_eq!(x.stats, y.stats, "{ctx}: exec stats differ");
            assert_eq!(x.runtime, y.runtime, "{ctx}: runtime stats differ");
            assert_eq!(x.transfers, y.transfers, "{ctx}: transfer ledgers differ");
            assert_eq!(
                y.engine.dispatched_insts, y.stats.instructions,
                "{ctx}: bytecode must dispatch every retired instruction"
            );
            assert_eq!(
                x.engine,
                Default::default(),
                "{ctx}: tree-walk engine counters must stay zero"
            );
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{ctx}: traps differ"),
        _ => panic!(
            "{ctx}: engines disagree on outcome: {:?} vs {:?}",
            tw.0, bc.0
        ),
    }
    assert_eq!(tw.1, bc.1, "{ctx}: final clocks differ");
}

/// The differential engine sweep: over the 200-seed corpus (both the
/// single-function and the interprocedural generator), the tree-walker and
/// the bytecode engine must agree on result, trap, cycle count, and
/// sanitizer verdict — and, via a per-instruction fuel lockstep, at *every
/// instruction boundary*: truncating both engines after exactly k retired
/// instructions must leave them at the same clock with the same trap.
#[test]
fn engines_agree_on_random_corpus_in_lockstep() {
    use trackfm_suite::sim::ExecEngine;
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0010);
    for case in 0..200 {
        let (m, a, b) = if case % 2 == 0 {
            let ops: Vec<Op> = (0..rng.next_range(1, 31))
                .map(|_| random_op(&mut rng))
                .collect();
            let seed = rng.next_u64() as i64;
            (build(&ops, seed), rng.next_u64(), rng.next_u64())
        } else {
            let ops: Vec<ExtOp> = (0..rng.next_range(1, 25))
                .map(|_| random_ext_op(&mut rng))
                .collect();
            let seed = rng.next_u64() as i64;
            (build_interproc(&ops, seed), rng.next_u64(), rng.next_u64())
        };
        let mut far = m.clone();
        TrackFmCompiler::default().compile(&mut far, None);

        // Full runs, sanitizer off and on: result, stats, cycles, verdict.
        for sanitize in [false, true] {
            let tw = exec_far_engine(&far, ExecEngine::TreeWalk, a, b, sanitize, u64::MAX);
            let bc = exec_far_engine(&far, ExecEngine::Bytecode, a, b, sanitize, u64::MAX);
            assert_engines_identical(&format!("case {case} sanitize={sanitize}"), tw, bc);
        }

        // Per-instruction lockstep on a deterministic subset: truncate both
        // engines at instruction k via the fuel limit and compare the
        // partial timelines. Identical clocks at every probed k means the
        // engines charge cycles in the same per-instruction order, not just
        // to the same total.
        if case % 10 == 0 {
            let (full, _) = exec_far_engine(&far, ExecEngine::TreeWalk, a, b, false, u64::MAX);
            let retired = full.as_ref().map(|r| r.stats.instructions).unwrap_or(64);
            for k in [
                1,
                2,
                3,
                5,
                retired / 3,
                retired / 2,
                retired.saturating_sub(1),
            ] {
                let k = k.max(1);
                let tw = exec_far_engine(&far, ExecEngine::TreeWalk, a, b, false, k);
                let bc = exec_far_engine(&far, ExecEngine::Bytecode, a, b, false, k);
                assert_engines_identical(&format!("case {case} fuel={k}"), tw, bc);
            }
        }
    }
}

/// Both engines resolve the same source position into
/// [`Trap::UnguardedAccess`]: the tree-walker reads it off the instruction
/// it is visiting, the bytecode engine maps the faulting pc back through
/// its side table — the messages must match byte for byte.
#[test]
fn engines_report_identical_sanitizer_trap_positions() {
    use trackfm_suite::sim::{ExecEngine, Trap};

    let mut m = Module::new("bad");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::I64, Type::I64, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let p = b.param(2);
        let v = b.load(Type::I64, p); // unguarded heap deref
        b.ret(Some(v));
    }
    m.verify().unwrap();
    let tw = exec_far_engine(&m, ExecEngine::TreeWalk, 0, 0, true, u64::MAX);
    let bc = exec_far_engine(&m, ExecEngine::Bytecode, 0, 0, true, u64::MAX);
    let (t1, t2) = (tw.0.unwrap_err(), bc.0.unwrap_err());
    assert!(matches!(t1, Trap::UnguardedAccess { .. }), "{t1:?}");
    assert_eq!(t1, t2, "trap payloads (incl. positions) must match");
    assert_eq!(t1.to_string(), t2.to_string());
    assert!(
        t1.to_string().contains("bb0 %3"),
        "position should point at the load: {t1}"
    );
}

/// The static trip-count analysis must agree with the interpreter:
/// for random (init, bound, step) counted loops, `static_trip_count`
/// equals the number of body executions observed by the profiler.
#[test]
fn static_trip_count_matches_execution() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0002);
    for _ in 0..48 {
        let init = rng.next_range(-50, 49);
        let bound = rng.next_range(-50, 199);
        let step = rng.next_range(1, 8);
        use trackfm_suite::analysis::dom::DomTree;
        use trackfm_suite::analysis::induction::{basic_ivs, static_trip_count};
        use trackfm_suite::analysis::loops::LoopForest;

        let mut m = Module::new("tc");
        let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let i0 = b.iconst(Type::I64, init);
            let n = b.iconst(Type::I64, bound);
            b.counted_loop(i0, n, step, |_b, _i| {});
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        m.verify().unwrap();

        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        assert_eq!(forest.loops.len(), 1);
        let ivs = basic_ivs(f, &forest.loops[0]);
        let predicted = static_trip_count(f, &forest.loops[0], &ivs);

        let mut machine = Machine::new(&m, LocalMem::new(1 << 12), CostModel::default(), 1 << 12);
        machine.enable_profiling();
        machine.run("main", &[]).unwrap();
        let profile = machine.take_profile();
        let body = forest.loops[0].latches[0];
        let executed = profile.block_count("main", body);

        match predicted {
            Some(t) => assert_eq!(t, executed, "static vs dynamic trip count"),
            None => assert_eq!(executed, 0, "analysis only bails on zero-trip loops"),
        }
    }
}
