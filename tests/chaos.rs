//! Chaos suite: workloads under seeded fault injection.
//!
//! Three properties pin the fault fabric down end to end:
//!
//! 1. **Semantic preservation** — whatever the link drops, stalls, or
//!    jitters, a workload's result is bit-identical to the fault-free run.
//!    Faults cost time, never correctness.
//! 2. **Determinism** — the same seed reproduces the exact same fault
//!    schedule, retry counters, and final stats, run after run.
//! 3. **Liveness** — a scripted remote-node outage mid-run degrades the
//!    runtime (prefetch off, backoff widened) and recovers when the link
//!    heals; nothing wedges, every workload completes.

use trackfm_suite::net::{BackendSpec, FaultPlan, PPM};
use trackfm_suite::telemetry::EventKind;
use trackfm_suite::workloads::runner::{execute, execute_with_report, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

fn spec() -> trackfm_suite::workloads::spec::WorkloadSpec {
    stream::sum(&StreamParams { elems: 64 << 10 })
}

/// Drop rates 0, 0.1%, 1%, 10%: the result never moves, and once drops are
/// plausible on this schedule the run both pays for them (faults counted,
/// cycles grow) and still terminates.
#[test]
fn drop_rate_sweep_preserves_semantics() {
    let spec = spec();
    let clean = execute(&spec, &RunConfig::trackfm(0.25));

    for drop_ppm in [0, 1_000, 10_000, 100_000] {
        let cfg = RunConfig::trackfm(0.25).with_faults(FaultPlan::drops(0xC0FFEE, drop_ppm));
        let faulty = execute(&spec, &cfg);
        // `execute` already asserts `spec.expected`; cross-check against the
        // fault-free run for good measure.
        assert_eq!(
            faulty.result.ret, clean.result.ret,
            "{drop_ppm} ppm drops changed the answer"
        );
        let rt = faulty.result.runtime.expect("trackfm run");
        if drop_ppm == 0 {
            // Zero rates deactivate the plan entirely: bit-identical to the
            // flawless fabric, including timing.
            assert_eq!(faulty.result.stats.cycles, clean.result.stats.cycles);
            assert_eq!(rt.link_faults, 0);
            assert_eq!(rt.retries, 0);
        } else {
            assert!(
                faulty.result.stats.cycles >= clean.result.stats.cycles,
                "faults only ever cost time"
            );
        }
        if drop_ppm >= 100_000 {
            assert!(rt.link_faults > 0, "10% drops must actually fire");
            // Every fault is answered: demand fetches and writebacks retry,
            // faulted prefetches are canceled (and re-fetched on demand).
            assert!(
                rt.retries + rt.prefetch_canceled > 0,
                "drops must force retries or prefetch cancellations"
            );
            let tx = faulty.result.transfers.unwrap();
            assert_eq!(tx.faults, rt.link_faults, "ledger and runtime agree");
            assert!(tx.fault_wasted_bytes > 0, "failed attempts burn the wire");
        }
    }
}

/// The same seed reproduces the identical fault schedule and final stats —
/// every counter, both ledgers — across independent runs.
#[test]
fn same_seed_reproduces_identical_stats() {
    let spec = spec();
    let cfg = RunConfig::trackfm(0.25)
        .with_faults(FaultPlan::drops(0xDEAD_BEEF, 50_000).with_stalls(20_000, 9_000));
    let a = execute(&spec, &cfg);
    let b = execute(&spec, &cfg);
    assert_eq!(a.result.ret, b.result.ret);
    assert_eq!(a.result.stats, b.result.stats);
    assert_eq!(a.result.runtime, b.result.runtime);
    assert_eq!(a.result.transfers, b.result.transfers);
    let rt = a.result.runtime.unwrap();
    assert!(rt.link_faults > 0, "5% drops must fire on this schedule");

    // A different seed reshuffles which attempts fail (same rates, different
    // schedule) — determinism comes from the seed, not the rates.
    let other = execute(
        &spec,
        &cfg.with_faults(FaultPlan::drops(0x5EED, 50_000).with_stalls(20_000, 9_000)),
    );
    assert_eq!(other.result.ret, a.result.ret, "semantics hold on any seed");
}

/// Stalls and jitter are *late successes*: they delay completions (counted
/// in the transfer ledger) without ever failing an attempt.
#[test]
fn stalls_and_jitter_delay_without_failing() {
    let spec = spec();
    let cfg = RunConfig::trackfm(0.25).with_faults(
        FaultPlan::none()
            .with_stalls(100_000, 12_000)
            .with_jitter(200_000, 3_000),
    );
    let out = execute(&spec, &cfg);
    let tx = out.result.transfers.unwrap();
    assert!(tx.delayed > 0, "10% stalls + 20% jitter must fire");
    assert!(tx.delay_cycles > 0);
    assert_eq!(tx.faults, 0, "stalls and jitter are not failures");
    assert_eq!(out.result.runtime.unwrap().retries, 0, "late is not lost");
}

/// A scripted remote-node outage mid-run: the runtime rides it out on
/// retry/backoff, visibly degrades (prefetch suppressed, Degraded event),
/// then recovers once the link heals — and the workload still finishes with
/// the right answer.
#[test]
fn outage_window_degrades_then_recovers() {
    let spec = spec();
    // Learn the fault-free length, then park an outage across the second
    // quarter of the measured phase.
    let clean = execute(&spec, &RunConfig::trackfm(0.25));
    let total = clean.result.stats.cycles;
    let start = total / 4;
    let end = start + total / 8;
    let cfg = RunConfig::trackfm(0.25).with_faults(FaultPlan::none().with_outage(start, end));
    let (out, rep) = execute_with_report(&spec, &cfg);

    assert_eq!(
        out.result.ret, clean.result.ret,
        "outage must not change the answer"
    );
    let rt = out.result.runtime.unwrap();
    assert!(rt.link_faults > 0, "the outage window must be hit");
    assert!(rt.retries > 0, "demand fetches retry through the outage");
    assert!(
        rt.degradations >= 1,
        "sustained faults must trip degradation"
    );
    assert!(
        rt.prefetch_suppressed > 0,
        "degraded mode turns the prefetcher off"
    );

    // The transitions are observable in telemetry, and recovery happened:
    // every Degraded has a matching Recovered (the run ends healthy).
    let snap = out.telemetry.as_ref().unwrap();
    let degraded = snap.count(EventKind::Degraded);
    let recovered = snap.count(EventKind::Recovered);
    assert_eq!(degraded, rt.degradations);
    assert_eq!(recovered, degraded, "the link heals after the window");
    assert!(snap.count(EventKind::FaultInjected) > 0);
    assert!(snap.count(EventKind::Retry) > 0);

    // The retry-latency histogram made it into the run report.
    let h = rep.histogram("retry_latency_cycles").unwrap();
    assert!(
        h.count() > 0,
        "retried ops record their detect+backoff penalty"
    );
}

/// One shard of four goes dark mid-run while the other three keep serving:
/// faults, degradation, and recovery all stay confined to the sick shard,
/// the answer never moves, and the same seed reproduces the identical
/// per-shard ledgers.
#[test]
fn shard_outage_stays_confined_to_the_sick_shard() {
    // A longer stream than the suite default: after the outage window the
    // sick shard needs enough demand traffic (~2 dozen clean fetches) for
    // its EWMA to decay back below the recovery threshold.
    let spec = stream::sum(&StreamParams { elems: 256 << 10 });
    let sick = 2u32;
    // Learn the fault-free sharded run length, then park an outage across
    // its second quarter — on shard 2 only.
    let clean = execute(&spec, &RunConfig::trackfm(0.25).with_shards(4));
    let total = clean.result.stats.cycles;
    let start = total / 4;
    let cfg = RunConfig::trackfm(0.25)
        .with_backend(BackendSpec::sharded(4).with_fault_shard(sick))
        .with_faults(FaultPlan::none().with_outage(start, start + total / 8));
    let (out, rep) = execute_with_report(&spec, &cfg);

    assert_eq!(
        out.result.ret, clean.result.ret,
        "outage must not change the answer"
    );
    let rt = out.result.runtime.unwrap();
    assert!(rt.link_faults > 0, "the outage window must be hit");
    assert!(
        rt.degradations >= 1,
        "sustained faults must trip degradation"
    );

    // Fault confinement: only the scripted shard's ledger shows faults; the
    // other three served their share of the stream flawlessly.
    let shards = &out.result.shards;
    assert_eq!(shards.len(), 4);
    for (i, snap) in shards.iter().enumerate() {
        assert!(snap.stats.fetches > 0, "shard {i} must keep serving");
        if i == sick as usize {
            assert!(
                snap.stats.faults > 0,
                "the sick shard must record its outage"
            );
        } else {
            assert_eq!(snap.stats.faults, 0, "shard {i} must stay flawless");
            assert!(!snap.health.is_degraded(), "shard {i} must stay healthy");
        }
    }
    // Degraded/Recovered events fired for the sick shard alone: the event
    // count matches the runtime's ledger, and every shard — the sick one
    // included — ends the run healthy again.
    let snap = out.telemetry.as_ref().unwrap();
    assert_eq!(snap.count(EventKind::Degraded), rt.degradations);
    assert_eq!(
        snap.count(EventKind::Recovered),
        snap.count(EventKind::Degraded),
        "the sick shard heals after the window"
    );
    assert!(!shards[sick as usize].health.is_degraded());

    // The report publishes one section per shard, faults where they belong.
    assert!(rep.field("shard2", "faults").unwrap() > 0);
    assert_eq!(rep.field("shard0", "faults"), Some(0));

    // Same seed, same outage, same per-shard ledgers — bit for bit.
    let again = execute(&spec, &cfg);
    assert_eq!(again.result.stats, out.result.stats);
    assert_eq!(again.result.runtime, out.result.runtime);
    assert_eq!(again.result.transfers, out.result.transfers);
    assert_eq!(again.result.shards, out.result.shards);
}

/// Fastswap under the same fabric: major faults re-drive through the kernel,
/// charging the retry cost, and the untransformed binary still completes.
#[test]
fn fastswap_retries_major_faults_under_drops() {
    let spec = spec();
    let clean = execute(&spec, &RunConfig::fastswap(0.25));
    let cfg = RunConfig::fastswap(0.25).with_faults(FaultPlan::drops(0xFA57, PPM / 10));
    let a = execute(&spec, &cfg);
    let b = execute(&spec, &cfg);

    assert_eq!(a.result.ret, clean.result.ret);
    let pager = a.result.pager.unwrap();
    assert!(pager.fault_retries > 0, "10% drops must hit major faults");
    assert_eq!(
        pager.major_faults,
        clean.result.pager.unwrap().major_faults,
        "retries re-drive the same fault, they don't mint new ones"
    );
    assert!(
        a.result.stats.cycles > clean.result.stats.cycles,
        "every retry charges the kernel fault path again"
    );
    // Same seed, same kernel-retry schedule.
    assert_eq!(a.result.pager, b.result.pager);
    assert_eq!(a.result.stats, b.result.stats);
}
