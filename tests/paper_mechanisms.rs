//! End-to-end assertions of the paper's headline mechanisms at test scale.
//! Each test corresponds to one evaluation claim (C1–C11 of the artifact
//! appendix); the bench targets print the full sweeps, these lock the
//! directions in CI.

use trackfm_suite::compiler::ChunkingMode;
use trackfm_suite::workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};
use trackfm_suite::workloads::{analytics, hashmap, kmeans, memcached, nas, stream};

/// C1 (Fig. 7): chunking eliminates fast-path guards and speeds up STREAM.
#[test]
fn c1_chunking_speeds_up_stream() {
    let spec = stream::sum(&stream::StreamParams { elems: 128 << 10 });
    let mut naive = RunConfig::trackfm(1.0).with_prefetch(false);
    naive.compiler.chunking = ChunkingMode::Off;
    let chunked = RunConfig::trackfm(1.0).with_prefetch(false);
    let rn = execute(&spec, &naive);
    let rc = execute(&spec, &chunked);
    assert_eq!(rc.result.stats.guards_fast, 0);
    assert!(rn.result.stats.cycles as f64 > 1.5 * rc.result.stats.cycles as f64);
}

/// C2 (Fig. 8): the cost model avoids chunking low-density/short loops.
#[test]
fn c2_selective_chunking_rescues_kmeans() {
    let spec = kmeans::kmeans(&kmeans::KmeansParams {
        points: 2_000,
        dims: 8,
        k: 4,
        iters: 2,
    });
    let profile = collect_profile(&spec);
    let mut all = RunConfig::trackfm(1.0);
    all.compiler.chunking = ChunkingMode::AllLoops;
    let model = RunConfig::trackfm(1.0);
    let ra = execute(&spec, &all);
    let rm = execute_with_profile(&spec, &model, Some(&profile));
    assert!(ra.result.stats.cycles as f64 > 2.0 * rm.result.stats.cycles as f64);
}

/// C3 (Fig. 9): low-spatial-locality lookups prefer small objects.
#[test]
fn c3_small_objects_win_for_hashmap() {
    let spec = hashmap::hashmap(&hashmap::HashmapParams {
        keys: 8_000,
        lookups: 16_000,
        skew: 1.02,
        seed: 11,
    });
    let small = execute(&spec, &RunConfig::trackfm(0.15).with_object_size(256));
    let large = execute(&spec, &RunConfig::trackfm(0.15).with_object_size(4096));
    assert!(small.result.stats.cycles < large.result.stats.cycles);
    assert!(small.result.bytes_transferred() < large.result.bytes_transferred());
}

/// C4 (Fig. 10): high-spatial-locality scans prefer large objects.
#[test]
fn c4_large_objects_win_for_stream() {
    let spec = stream::copy(&stream::StreamParams { elems: 128 << 10 });
    let small = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(256));
    let large = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(4096));
    assert!(large.result.stats.cycles < small.result.stats.cycles);
}

/// C5 (Fig. 11): prefetching hides fetch latency for sequential scans.
#[test]
fn c5_prefetching_helps_when_memory_is_scarce() {
    let spec = stream::sum(&stream::StreamParams { elems: 128 << 10 });
    let with_pf = execute(&spec, &RunConfig::trackfm(0.2).with_prefetch(true));
    let without = execute(&spec, &RunConfig::trackfm(0.2).with_prefetch(false));
    assert!(
        without.result.stats.cycles as f64 > 1.8 * with_pf.result.stats.cycles as f64,
        "prefetch should hide most fetch latency"
    );
    assert!(with_pf.result.runtime.unwrap().prefetch_hits > 0);
}

/// C6 (Fig. 12): TrackFM beats Fastswap on STREAM under pressure.
#[test]
fn c6_trackfm_beats_fastswap_on_stream() {
    let spec = stream::sum(&stream::StreamParams { elems: 128 << 10 });
    let tfm = execute(&spec, &RunConfig::trackfm(0.25));
    let fsw = execute(&spec, &RunConfig::fastswap(0.25));
    assert!(fsw.result.stats.cycles as f64 > 2.0 * tfm.result.stats.cycles as f64);
}

/// C7 (Fig. 13): page-granularity transfers amplify I/O for fine-grained
/// access; object granularity mitigates it.
#[test]
fn c7_io_amplification() {
    let spec = hashmap::hashmap(&hashmap::HashmapParams {
        keys: 8_000,
        lookups: 4_000,
        skew: 1.02,
        seed: 2,
    });
    let tfm = execute(&spec, &RunConfig::trackfm(0.15).with_object_size(64));
    let fsw = execute(&spec, &RunConfig::fastswap(0.15));
    assert!(
        fsw.result.bytes_transferred() > 8 * tfm.result.bytes_transferred(),
        "fastswap must move far more data: {} vs {}",
        fsw.result.bytes_transferred(),
        tfm.result.bytes_transferred()
    );
}

/// C8 (Fig. 14): on the analytics application under memory constraint,
/// TrackFM beats Fastswap and tracks AIFM within a modest gap — with zero
/// source changes.
#[test]
fn c8_analytics_trackfm_between_fastswap_and_aifm() {
    let spec = analytics::analytics(&analytics::AnalyticsParams {
        rows: 30_000,
        groups: 2_400,
    });
    let profile = collect_profile(&spec);
    let tfm = execute_with_profile(&spec, &RunConfig::trackfm(0.25), Some(&profile));
    let fsw = execute(&spec, &RunConfig::fastswap(0.25));
    let aifm = execute_with_profile(&spec, &RunConfig::aifm(0.25), Some(&profile));
    let (t, f, a) = (
        tfm.result.stats.cycles as f64,
        fsw.result.stats.cycles as f64,
        aifm.result.stats.cycles as f64,
    );
    assert!(t < f, "TrackFM must beat Fastswap: {t} vs {f}");
    assert!(a <= t, "AIFM is the hand-tuned lower bound");
    assert!(
        t / a < 1.35,
        "TrackFM should track AIFM closely (paper: within 10%), got {:.0}%",
        (t / a - 1.0) * 100.0
    );
}

/// C10 (Fig. 16): higher Zipf skew means more temporal locality, which
/// amortizes Fastswap's page faults — its absolute performance improves
/// sharply with skew, while TrackFM already wins at low skew thanks to
/// small objects (less I/O amplification).
#[test]
fn c10_skew_amortizes_faults_and_trackfm_wins_low_skew() {
    let mk = |skew| {
        memcached::memcached(&memcached::MemcachedParams {
            keys: 8_000,
            gets: 24_000,
            skew,
            seed: 1,
        })
    };
    let run = |skew: f64| {
        let spec = mk(skew);
        let tfm = execute(&spec, &RunConfig::trackfm(0.1).with_object_size(64));
        let fsw = execute(&spec, &RunConfig::fastswap(0.1));
        (tfm.result, fsw.result)
    };
    let (tfm_low, fsw_low) = run(1.01);
    let (_, fsw_high) = run(1.35);
    // Fastswap improves markedly with temporal locality.
    assert!(
        fsw_high.stats.cycles * 2 < fsw_low.stats.cycles,
        "faults should amortize with skew: {} vs {}",
        fsw_high.stats.cycles,
        fsw_low.stats.cycles
    );
    assert!(fsw_high.pager.unwrap().major_faults < fsw_low.pager.unwrap().major_faults);
    // At low skew, TrackFM wins and moves far less data.
    assert!(tfm_low.stats.cycles < fsw_low.stats.cycles);
    assert!(tfm_low.bytes_transferred() * 4 < fsw_low.bytes_transferred());
}

/// C11 + Fig. 17b: at 25% local, TrackFM beats Fastswap on MG (stencil) and
/// the O1 pre-pipeline closes most of FT's gap.
#[test]
fn c11_nas_directions() {
    let p = nas::NasParams { shrink: 20 };

    let mg = nas::mg(&p);
    let tfm = execute(&mg, &RunConfig::trackfm(0.25));
    let fsw = execute(&mg, &RunConfig::fastswap(0.25));
    assert!(
        tfm.result.stats.cycles < fsw.result.stats.cycles,
        "MG: TrackFM should win"
    );

    let ft = nas::ft(&p);
    let plain = execute(&ft, &RunConfig::trackfm(0.25));
    let mut o1 = RunConfig::trackfm(0.25);
    o1.compiler.o1 = true;
    let opt = execute(&ft, &o1);
    assert!(
        opt.result.stats.cycles < plain.result.stats.cycles,
        "O1 must help FT"
    );
}

/// §5 "Lessons": with repeated access, page-fault costs amortize — Fastswap
/// approaches local speed once the hot set fits its budget.
#[test]
fn lesson_temporal_locality_amortizes_faults() {
    // High skew + budget big enough for the hot set.
    let spec = memcached::memcached(&memcached::MemcachedParams {
        keys: 4_000,
        gets: 40_000,
        skew: 1.4,
        seed: 9,
    });
    let tight = execute(&spec, &RunConfig::fastswap(0.2));
    let roomy = execute(&spec, &RunConfig::fastswap(0.7));
    let loc = execute(&spec, &RunConfig::local());
    let slowdown = roomy.result.stats.cycles as f64 / loc.result.stats.cycles as f64;
    assert!(
        slowdown < 3.5,
        "hot-set faults should amortize, got {slowdown:.1}x"
    );
    assert!(roomy.result.stats.cycles < tight.result.stats.cycles);
}

/// §5 "hybrid approach (compiler and kernel) holds promise": chunked
/// streams plus guard-free raw accesses. Semantics must hold, and where
/// residency is high and accesses irregular, the hybrid beats full TrackFM
/// (no guard tax on resident accesses).
#[test]
fn lesson_hybrid_compiler_kernel() {
    use trackfm_suite::workloads::runner::SystemKind;

    // Semantic preservation on every workload family.
    let specs = [
        stream::sum(&stream::StreamParams { elems: 64 << 10 }),
        hashmap::hashmap(&hashmap::HashmapParams {
            keys: 8_000,
            lookups: 24_000,
            skew: 1.05,
            seed: 4,
        }),
    ];
    for spec in &specs {
        let out = execute(spec, &RunConfig::hybrid(0.5));
        assert!(matches!(RunConfig::hybrid(0.5).system, SystemKind::Hybrid));
        // Hybrid binaries carry no guards — only chunk intrinsics.
        assert_eq!(out.report.as_ref().unwrap().total_guards(), 0);
    }

    // High-residency irregular workload: hybrid's guard-free fast path wins.
    let spec = hashmap::hashmap(&hashmap::HashmapParams {
        keys: 8_000,
        lookups: 24_000,
        skew: 1.05,
        seed: 4,
    });
    let hybrid = execute(&spec, &RunConfig::hybrid(1.0));
    let tfm = execute(&spec, &RunConfig::trackfm(1.0));
    assert!(
        hybrid.result.stats.cycles < tfm.result.stats.cycles,
        "guard-free resident accesses should win when everything fits: {} vs {}",
        hybrid.result.stats.cycles,
        tfm.result.stats.cycles
    );
}
