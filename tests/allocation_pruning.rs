//! End-to-end tests of allocation pruning (§5 future work, implemented):
//! small constant-size allocations stay on libc `malloc`, permanently local
//! and guard-free, while large allocations remain remotable.

use trackfm_suite::compiler::{CompilerOptions, CostModel, TrackFmCompiler};
use trackfm_suite::ir::{BinOp, FunctionBuilder, InstKind, Intrinsic, Module, Signature, Type};
use trackfm_suite::net::LinkParams;
use trackfm_suite::runtime::FarMemoryConfig;
use trackfm_suite::sim::{Machine, TrackFmMem};

/// A program with a tiny hot accumulator buffer (malloc(64)) and a large
/// cold array (malloc(64 KiB)): the classic MaPHeA-style placement case.
fn program(iters: i64) -> Module {
    let mut m = Module::new("prune");
    let id = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let small = b.malloc_const(64);
        let big = b.malloc_const(64 << 10);
        let zero = b.iconst(Type::I64, 0);
        b.store(small, zero);
        let n = b.iconst(Type::I64, iters);
        b.counted_loop(zero, n, 1, |b, i| {
            // Hot: bump the accumulator through the small buffer.
            let acc = b.load(Type::I64, small);
            let mask = b.iconst(Type::I64, 0x1FFF);
            let idx = b.binop(BinOp::And, i, mask);
            let slot = b.gep(big, idx, 8, 0);
            b.store(slot, acc);
            let x = b.load(Type::I64, slot);
            let one = b.iconst(Type::I64, 1);
            let acc2 = b.binop(BinOp::Add, x, one);
            b.store(small, acc2);
        });
        let out = b.load(Type::I64, small);
        b.intrinsic(Intrinsic::Free, vec![small]);
        b.intrinsic(Intrinsic::Free, vec![big]);
        b.ret(Some(out));
    }
    m.verify().unwrap();
    m
}

fn run(m: &Module) -> (u64, u64, u64) {
    let cfg = FarMemoryConfig {
        heap_size: 1 << 20,
        object_size: 4096,
        local_budget: 16 << 10, // 4 objects: real pressure on the big array
        link: LinkParams::tcp_25g(),
        ..FarMemoryConfig::small()
    };
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(m, mem, CostModel::default(), 1 << 20);
    let r = machine.run("main", &[]).expect("clean run");
    (r.ret, r.stats.cycles, r.stats.total_guards())
}

#[test]
fn pruning_keeps_small_allocations_local_and_guard_free() {
    let iters = 20_000;
    let mut plain = program(iters);
    let plain_report = TrackFmCompiler::default().compile(&mut plain, None);

    let mut pruned = program(iters);
    let compiler = TrackFmCompiler::new(CompilerOptions {
        prune_local_allocations: true,
        ..Default::default()
    });
    let pruned_report = compiler.compile(&mut pruned, None);

    // Compiler-level effects.
    assert_eq!(plain_report.pruned_local_sites, 0);
    assert_eq!(
        pruned_report.pruned_local_sites, 1,
        "malloc(64) stays local"
    );
    assert!(
        pruned_report.total_guards() < plain_report.total_guards(),
        "accesses through the pruned allocation need no guards: {} vs {}",
        pruned_report.total_guards(),
        plain_report.total_guards()
    );
    // The pruned module still routes the big allocation through TrackFM.
    let f = pruned.function(pruned.find_function("main").unwrap());
    let mut kinds = (0, 0);
    for v in f.live_insts() {
        match f.kind(v) {
            InstKind::IntrinsicCall {
                intr: Intrinsic::Malloc,
                ..
            } => kinds.0 += 1,
            InstKind::IntrinsicCall {
                intr: Intrinsic::TfmAlloc,
                ..
            } => kinds.1 += 1,
            _ => {}
        }
    }
    assert_eq!(kinds, (1, 1), "one local malloc, one remotable tfm.alloc");

    // Runtime effects: identical result, fewer cycles.
    let (r1, c1, _) = run(&plain);
    let (r2, c2, _) = run(&pruned);
    assert_eq!(r1, r2, "pruning must not change semantics");
    assert_eq!(r1, iters as u64);
    assert!(
        c2 < c1,
        "pruned accumulator should be cheaper: {c2} vs {c1}"
    );
}

#[test]
fn pruned_allocations_survive_memory_pressure() {
    // The small buffer's object is pinned: even at a 4-object budget with
    // the big array streaming through, the accumulator never faults.
    let mut pruned = program(50_000);
    let compiler = TrackFmCompiler::new(CompilerOptions {
        prune_local_allocations: true,
        ..Default::default()
    });
    compiler.compile(&mut pruned, None);
    let (ret, _, _) = run(&pruned);
    assert_eq!(ret, 50_000);
}

#[test]
fn dynamic_size_allocations_are_never_pruned() {
    let mut m = Module::new("dyn");
    let id = m.declare_function("main", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let n = b.param(0); // size unknown at compile time
        let p = b.intrinsic(Intrinsic::Malloc, vec![n]);
        let x = b.load(Type::I64, p);
        b.ret(Some(x));
    }
    m.verify().unwrap();
    let compiler = TrackFmCompiler::new(CompilerOptions {
        prune_local_allocations: true,
        ..Default::default()
    });
    let report = compiler.compile(&mut m, None);
    assert_eq!(report.pruned_local_sites, 0);
    assert_eq!(report.total_guards(), 1, "dynamic allocation stays guarded");
}
