#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
set -eux

cargo build --workspace --release
cargo test -q --workspace
# Chaos suite: seeded fault schedules (fixed seeds inside the tests) —
# semantic preservation, determinism, and degradation/recovery under outage.
cargo test -q --test chaos
# Pay-for-use gate: the no-fault fast path asserts bit-identical costs.
cargo bench -q -p tfm-bench --bench fault_overhead
cargo clippy --workspace --all-targets -- -D warnings
