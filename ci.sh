#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
set -eux

cargo build --workspace --release
cargo test -q --workspace
# Chaos suite: seeded fault schedules (fixed seeds inside the tests) —
# semantic preservation, determinism, and degradation/recovery under outage,
# including a per-shard outage confined to the sick shard.
cargo test -q --test chaos
# Sharding suite: deterministic placement, reproducible per-shard ledgers,
# and the sharded(1) == SingleNode cost identity (fault plans included).
cargo test -q --test sharding
# Failover suite: a 200-seed crash/restart sweep under replicas(2) asserts
# zero lost acknowledged writebacks, replicas(1) asserts bitwise pay-for-use
# identity, and the R=1 loss case stays honestly accounted.
cargo test -q --test failover
# Soundness gate: tfm-lint must report zero uncovered heap accesses on
# every workload/example/config, and the static lint must agree with the
# dynamic guard sanitizer over the randomized corpus.
cargo test -q --test lint_gate
cargo test -q --test random_programs
# Elision gate: redundant-guard elimination is deterministic, preserves
# results, and never increases simulated cycles.
TFM_SCALE=8 cargo bench -q -p tfm-bench --bench guard_elision
# Pay-for-use gate: the no-fault fast path asserts bit-identical costs.
cargo bench -q -p tfm-bench --bench fault_overhead
# Tracing gate: span tracing off asserts bit-identical simulated cycles;
# on, the recording overhead must stay bounded. Emits
# BENCH_trace_overhead.json for trend tracking.
cargo bench -q -p tfm-bench --bench trace_overhead
# Tracing suite: causal decomposition of guard latency under chaos,
# byte-identical trace exports across same-seed runs, and the pay-for-use
# report identity.
cargo test -q --test tracing
# Scaling gate: sharded(1) asserts bit-identity with SingleNode before the
# 1/2/4/8-shard occupancy sweep.
cargo bench -q -p tfm-bench --bench shard_scaling
# Failover gate: replicas(1) asserts bit-identical cycles and a byte-identical
# rendered report vs the plain sharded backend; the crash row must end with
# zero lost acknowledged writebacks. Emits BENCH_failover.json.
cargo bench -q -p tfm-bench --bench failover_overhead
# Concurrency suite: one wire transfer per in-flight object, a 200-seed
# cores(1) bitwise-identity + cores(N) determinism sweep, and overlapping
# demand-fetch spans in the multi-core trace.
cargo test -q --test concurrency
# Concurrency gate: cores(1) asserts bit-identical cycles and a byte-identical
# rendered report vs a hand-driven synchronous machine; 8 cores must clear
# >= 4x the open-loop throughput of 1. Emits BENCH_concurrency.json.
cargo bench -q -p tfm-bench --bench concurrency_scaling
cargo clippy --workspace --all-targets -- -D warnings
