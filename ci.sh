#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
set -eux

cargo build --workspace --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
