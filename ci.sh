#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
set -eux

cargo fmt --check
cargo build --workspace --release
cargo test -q --workspace
# Chaos suite: seeded fault schedules (fixed seeds inside the tests) —
# semantic preservation, determinism, and degradation/recovery under outage,
# including a per-shard outage confined to the sick shard.
cargo test -q --test chaos
# Sharding suite: deterministic placement, reproducible per-shard ledgers,
# and the sharded(1) == SingleNode cost identity (fault plans included).
cargo test -q --test sharding
# Failover suite: a 200-seed crash/restart sweep under replicas(2) asserts
# zero lost acknowledged writebacks, replicas(1) asserts bitwise pay-for-use
# identity, and the R=1 loss case stays honestly accounted.
cargo test -q --test failover
# Soundness gate: tfm-lint must report zero uncovered heap accesses on
# every workload/example/config, and the static lint must agree with the
# dynamic guard sanitizer over the randomized corpus — including the
# 200-seed interprocedural sweep that runs every on/off combination of
# {interproc, call_aware_kills, guard_motion} against a LocalMem oracle.
cargo test -q --test lint_gate
cargo test -q --test random_programs
# Tracing suite: causal decomposition of guard latency under chaos,
# byte-identical trace exports across same-seed runs, and the pay-for-use
# report identity.
cargo test -q --test tracing
# Concurrency suite: one wire transfer per in-flight object, a 200-seed
# cores(1) bitwise-identity + cores(N) determinism sweep, and overlapping
# demand-fetch spans in the multi-core trace.
cargo test -q --test concurrency

# Bench gates (each asserts its own invariants and aborts on violation):
#   guard_elision       — elision is deterministic, preserves results, never
#                         increases cycles (TFM_SCALE=8 for a quick pass).
#   guard_motion        — interproc custody + guard motion: deterministic,
#                         result-preserving, never slower, and *strictly*
#                         faster than elide-only on the serving loop.
#                         Emits BENCH_guard_motion.json.
#   fault_overhead      — the no-fault fast path is bit-identical.
#   trace_overhead      — tracing off is bit-identical; on, bounded.
#                         Emits BENCH_trace_overhead.json.
#   shard_scaling       — sharded(1) == SingleNode, then the shard sweep.
#   failover_overhead   — replicas(1) bit-identical; crash row loses zero
#                         acknowledged writebacks. Emits BENCH_failover.json.
#   concurrency_scaling — cores(1) bit-identical; 8 cores >= 4x throughput.
#                         Emits BENCH_concurrency.json.
#   interp_speed        — both engines bit-identical on serving, then the
#                         bytecode engine must clear >= 1.5x the tree-walker's
#                         wall clock. Emits BENCH_interp.json.
for bench in guard_elision guard_motion fault_overhead trace_overhead \
    shard_scaling failover_overhead concurrency_scaling interp_speed; do
    case "$bench" in
    guard_elision | guard_motion) TFM_SCALE=8 cargo bench -q -p tfm-bench --bench "$bench" ;;
    *) cargo bench -q -p tfm-bench --bench "$bench" ;;
    esac
done

cargo clippy --workspace --all-targets -- -D warnings
